#include "fleet/shared_decision_cache.h"

#include <algorithm>

#include "base/metrics.h"

namespace rispp::fleet {

namespace {

MetricCounter& hit_metric() {
  static MetricCounter& m = metric_counter("fleet.decision_cache.hits");
  return m;
}
MetricCounter& miss_metric() {
  static MetricCounter& m = metric_counter("fleet.decision_cache.misses");
  return m;
}
MetricCounter& eviction_metric() {
  static MetricCounter& m = metric_counter("fleet.decision_cache.evictions");
  return m;
}
MetricCounter& cross_metric() {
  static MetricCounter& m = metric_counter("fleet.decision_cache.cross_session_hits");
  return m;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SharedDecisionCache::SharedDecisionCache(std::size_t capacity, unsigned shards)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  const std::size_t count = round_up_pow2(std::max(1u, shards));
  shard_mask_ = count - 1;
  shard_capacity_ = std::max<std::size_t>(1, capacity_ / count);
  shards_ = std::vector<Shard>(count);
}

SharedDecisionCache::DomainId SharedDecisionCache::register_domain(
    std::uint64_t set_fingerprint, std::string_view scheduler,
    Cycles payback_cycles_per_atom, std::uint64_t config_digest) {
  std::lock_guard<std::mutex> lock(domains_mutex_);
  for (DomainId id = 0; id < domains_.size(); ++id) {
    const Domain& d = domains_[id];
    if (d.set_fingerprint == set_fingerprint && d.scheduler == scheduler &&
        d.payback == payback_cycles_per_atom && d.config_digest == config_digest)
      return id;
  }
  domains_.push_back(Domain{set_fingerprint, std::string(scheduler), payback_cycles_per_atom,
                            config_digest});
  return static_cast<DomainId>(domains_.size() - 1);
}

std::uint64_t SharedDecisionCache::key_hash(DomainId domain, const std::vector<SiId>& sis,
                                            const std::vector<std::uint64_t>& forecast,
                                            const Molecule& ready, unsigned budget) {
  std::uint64_t hash = fingerprint_mix(fingerprint_mix(0, domain), sis.size());
  for (SiId si : sis) hash = fingerprint_mix(hash, si);
  for (std::uint64_t f : forecast) hash = fingerprint_mix(hash, f);
  for (std::size_t t = 0; t < ready.dimension(); ++t) hash = fingerprint_mix(hash, ready[t]);
  return fingerprint_mix(hash, budget);
}

bool SharedDecisionCache::lookup(DomainId domain, std::uint64_t session,
                                 const std::vector<SiId>& sis,
                                 const std::vector<std::uint64_t>& forecast,
                                 const Molecule& ready, unsigned budget,
                                 SharedDecision& out) {
  const std::uint64_t hash = key_hash(domain, sis, forecast, ready, budget);
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto bucket_it = shard.buckets.find(hash);
  if (bucket_it != shard.buckets.end()) {
    for (const auto entry_it : bucket_it->second) {
      if (entry_it->domain == domain && entry_it->budget == budget &&
          entry_it->sis == sis && entry_it->forecast == forecast &&
          entry_it->ready == ready) {
        ++shard.hits;
        hit_metric().add();
        if (entry_it->session != session) {
          ++shard.cross_session_hits;
          cross_metric().add();
        }
        shard.lru.splice(shard.lru.begin(), shard.lru, entry_it);
        out = entry_it->decision;  // copy out: the entry may be evicted next
        return true;
      }
    }
  }
  ++shard.misses;
  miss_metric().add();
  return false;
}

void SharedDecisionCache::insert(DomainId domain, std::uint64_t session,
                                 const std::vector<SiId>& sis,
                                 const std::vector<std::uint64_t>& forecast,
                                 const Molecule& ready, unsigned budget,
                                 const SharedDecision& decision) {
  const std::uint64_t hash = key_hash(domain, sis, forecast, ready, budget);
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  // A racing session may have inserted the same key since our miss; keeping
  // the first copy preserves its LRU position and session tag.
  const auto bucket_it = shard.buckets.find(hash);
  if (bucket_it != shard.buckets.end()) {
    for (const auto entry_it : bucket_it->second)
      if (entry_it->domain == domain && entry_it->budget == budget &&
          entry_it->sis == sis && entry_it->forecast == forecast &&
          entry_it->ready == ready)
        return;
  }
  if (shard.lru.size() >= shard_capacity_) {
    const auto victim = std::prev(shard.lru.end());
    auto& victim_bucket = shard.buckets[victim->hash];
    victim_bucket.erase(std::find(victim_bucket.begin(), victim_bucket.end(), victim));
    if (victim_bucket.empty()) shard.buckets.erase(victim->hash);
    shard.lru.erase(victim);
    ++shard.evictions;
    eviction_metric().add();
  }
  shard.lru.emplace_front();
  Entry& entry = shard.lru.front();
  entry.domain = domain;
  entry.session = session;
  entry.sis = sis;
  entry.forecast = forecast;
  entry.ready = ready;
  entry.budget = budget;
  entry.hash = hash;
  entry.decision = decision;
  shard.buckets[hash].push_back(shard.lru.begin());
}

std::uint64_t SharedDecisionCache::hits() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    total += s.hits;
  }
  return total;
}

std::uint64_t SharedDecisionCache::misses() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    total += s.misses;
  }
  return total;
}

std::uint64_t SharedDecisionCache::evictions() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    total += s.evictions;
  }
  return total;
}

std::uint64_t SharedDecisionCache::cross_session_hits() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    total += s.cross_session_hits;
  }
  return total;
}

std::size_t SharedDecisionCache::size() const {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    total += s.lru.size();
  }
  return total;
}

SharedDecisionCache& SharedDecisionCache::global() {
  static SharedDecisionCache* cache = new SharedDecisionCache();
  return *cache;
}

}  // namespace rispp::fleet
