#include "fleet/trace_repository.h"

#include "base/metrics.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "jpeg/jpeg_si_library.h"
#include "jpeg/jpeg_workload.h"

namespace rispp::fleet {

const TraceEntry& TraceRepository::get(const SessionSpec& spec) {
  static MetricCounter& hit_metric = metric_counter("fleet.trace_cache.hits");
  static MetricCounter& miss_metric = metric_counter("fleet.trace_cache.misses");

  const Key key{static_cast<int>(spec.content), spec.frames, spec.width, spec.height};
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    hit_metric.add();
    return *it->second;
  }
  ++misses_;
  miss_metric.add();

  // The SI set and forecast seeds are cheap to rebuild in-process; only the
  // recorded trace (the encoder / compressor run) is worth persisting. The
  // cache file is keyed by the workload fingerprint — SI-library or workload
  // edits change the key, so a stale trace can never be replayed — and the
  // key scheme is shared with the bench harness (bench/common.cpp), so one
  // warm cache serves both.
  static MetricCounter& disk_hit_metric = metric_counter("fleet.trace_cache.disk_hits");
  std::unique_ptr<TraceEntry> entry;
  if (spec.content == Content::kH264) {
    entry = std::make_unique<TraceEntry>(h264sis::build_h264_si_set());
    h264::WorkloadConfig config;
    config.frames = spec.frames;
    if (spec.width > 0) config.video.width = spec.width;
    if (spec.height > 0) config.video.height = spec.height;
    const auto path = h264::trace_cache_path(entry->set, config);
    if (auto cached = try_load_trace_file(path)) {
      entry->trace = std::move(*cached);
      ++disk_hits_;
      disk_hit_metric.add();
    } else {
      entry->trace = h264::generate_h264_workload(entry->set, config).trace;
      save_trace_file(entry->trace, path);
    }
    entry->seeds = h264::default_forecast_seeds(entry->set);
  } else {
    entry = std::make_unique<TraceEntry>(jpegsis::build_jpeg_si_set());
    jpeg::JpegWorkloadConfig config;
    config.images = spec.frames;
    if (spec.width > 0) config.width = spec.width;
    if (spec.height > 0) config.height = spec.height;
    const auto path = jpeg::trace_cache_path(entry->set, config);
    if (auto cached = try_load_trace_file(path)) {
      entry->trace = std::move(*cached);
      ++disk_hits_;
      disk_hit_metric.add();
    } else {
      entry->trace = jpeg::generate_jpeg_workload(entry->set, config).trace;
      save_trace_file(entry->trace, path);
    }
    entry->seeds = jpeg::jpeg_forecast_seeds(entry->set);
  }
  const TraceEntry& ref = *entry;
  entries_.emplace(key, std::move(entry));
  return ref;
}

std::uint64_t TraceRepository::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t TraceRepository::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t TraceRepository::disk_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disk_hits_;
}

std::size_t TraceRepository::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

TraceRepository& TraceRepository::global() {
  static TraceRepository* repo = new TraceRepository();
  return *repo;
}

}  // namespace rispp::fleet
