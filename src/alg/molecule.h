// The Molecule assembly model of DATE'08 §4.1.
//
// A Molecule is a vector m ∈ ℕⁿ where n is the number of atom *types* in the
// platform and m_i is the desired number of instances of atom type i. The
// structure (ℕⁿ, ∪, ∩, ≤) is a complete lattice:
//
//   (m ∪ o)_i = max(m_i, o_i)   -- Meta-Molecule covering both (join)
//   (m ∩ o)_i = min(m_i, o_i)   -- atoms collectively needed (meet)
//   m ≤ o  iff  ∀i: m_i ≤ o_i   -- partial order
//   |m|   = Σ m_i               -- determinant: total atoms required
//   (m ⊖ o)_i = max(o_i - m_i,0) -- atoms still missing for o given m
//
// (The paper writes the last operator with a ⊖-like symbol and argument order
// "m ⊖ o = what o needs beyond m"; we keep that order.)
//
// These five operations are the entire vocabulary of the Atom scheduling
// problem (§4.2-4.4), so they live in their own tiny library with
// property-based tests for the algebraic laws.
//
// Storage: the run-time decision path (selection, UpgradeState, RTM demand
// accumulation) performs tens of millions of Molecule ops per sweep, so the
// counts live in a small inline buffer sized to cover the platform atom-type
// counts we model (H.264 has 13 atom types, JPEG fewer) — no heap allocation
// for dimension ≤ kInlineCapacity, with a std::vector spill for larger
// platforms. The determinant is cached and recomputed lazily; taking a
// mutable reference via operator[] conservatively invalidates the cache.
// The *_into / *_determinant free functions below compute lattice ops
// in place or without materializing the result at all.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "base/types.h"

namespace rispp {

class Molecule {
 public:
  /// Covers every platform we instantiate (H.264: 13 atom types) without
  /// touching the heap; larger dimensions transparently spill to a vector.
  static constexpr std::size_t kInlineCapacity = 16;

  Molecule() = default;

  /// Zero molecule (neutral element of ∪) of the given dimension.
  explicit Molecule(std::size_t dimension) { assign_zero(dimension); }

  Molecule(std::initializer_list<AtomCount> counts) {
    assign(std::span<const AtomCount>(counts.begin(), counts.size()));
  }

  explicit Molecule(const std::vector<AtomCount>& counts) {
    assign(std::span<const AtomCount>(counts.data(), counts.size()));
  }

  /// Unit-Molecule u_t: one instance of atom type t (eq. (1) alphabet).
  static Molecule unit(std::size_t dimension, AtomTypeId type);

  std::size_t dimension() const { return size_; }
  bool empty() const;  // all-zero?

  AtomCount operator[](std::size_t i) const { return data()[i]; }
  AtomCount& operator[](std::size_t i) {
    det_valid_ = false;  // conservative: the caller may write through the ref
    return data()[i];
  }
  std::span<const AtomCount> counts() const { return {data(), size_}; }

  /// Reuse this molecule's storage as a zero molecule of `dimension`.
  void assign_zero(std::size_t dimension);
  /// Reuse this molecule's storage for a copy of `counts`.
  void assign(std::span<const AtomCount> counts);

  /// Determinant |m|: total number of atoms required. Cached; O(1) on the
  /// decision path where molecules are built once and queried repeatedly.
  unsigned determinant() const;

  /// Number of distinct atom types with non-zero count.
  unsigned type_count() const;

  bool operator==(const Molecule& rhs) const;

  /// "m1,m2,...,mn" — used in logs and golden tests.
  std::string to_string() const;

 private:
  friend void join_into(Molecule& acc, const Molecule& m);
  friend void meet_into(Molecule& acc, const Molecule& m);
  friend void missing_into(Molecule& out, const Molecule& available, const Molecule& wanted);

  AtomCount* data() { return size_ <= kInlineCapacity ? inline_.data() : heap_.data(); }
  const AtomCount* data() const {
    return size_ <= kInlineCapacity ? inline_.data() : heap_.data();
  }

  std::size_t size_ = 0;
  std::array<AtomCount, kInlineCapacity> inline_{};
  std::vector<AtomCount> heap_;  // engaged only when size_ > kInlineCapacity
  mutable unsigned det_ = 0;
  mutable bool det_valid_ = true;  // empty molecule has |m| = 0
};

/// Join: Meta-Molecule containing the atoms required to implement both.
Molecule join(const Molecule& a, const Molecule& b);
/// Meet: atoms collectively needed by both.
Molecule meet(const Molecule& a, const Molecule& b);

inline Molecule operator|(const Molecule& a, const Molecule& b) { return join(a, b); }
inline Molecule operator&(const Molecule& a, const Molecule& b) { return meet(a, b); }

/// acc := acc ∪ m, in place (no allocation once acc has m's dimension).
void join_into(Molecule& acc, const Molecule& m);
/// acc := acc ∩ m, in place.
void meet_into(Molecule& acc, const Molecule& m);

/// Partial order m ≤ o iff every component is ≤. Note: !(a<=b) does NOT imply
/// b<=a — molecules can be incomparable (paper's m2=(2,2) vs m4=(1,3)).
bool leq(const Molecule& a, const Molecule& b);

/// available ⊖ wanted: the minimal Meta-Molecule that still has to be loaded
/// to offer `wanted` when `available` is already configured.
Molecule missing(const Molecule& available, const Molecule& wanted);
/// out := available ⊖ wanted, reusing out's storage.
void missing_into(Molecule& out, const Molecule& available, const Molecule& wanted);
/// |available ⊖ wanted| without materializing the difference.
unsigned missing_determinant(const Molecule& available, const Molecule& wanted);

/// |a ∪ b| without materializing the join.
unsigned join_determinant(const Molecule& a, const Molecule& b);

/// sup M = ∪ over the set (zero molecule if empty, per the neutral element).
Molecule sup(std::span<const Molecule> set, std::size_t dimension);
/// inf M = ∩ over the set. Empty set has no finite representation here, so
/// the caller must pass a non-empty set.
Molecule inf(std::span<const Molecule> set);

/// Decomposes (available ⊖ wanted) into a list of Unit-Molecule type ids —
/// the tokens the scheduling function SF emits (§4.2 eq. (1)).
std::vector<AtomTypeId> unit_decomposition(const Molecule& meta);
/// Appends the decomposition to `out` instead of allocating a fresh vector.
void append_unit_decomposition(const Molecule& meta, std::vector<AtomTypeId>& out);

}  // namespace rispp
