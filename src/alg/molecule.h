// The Molecule assembly model of DATE'08 §4.1.
//
// A Molecule is a vector m ∈ ℕⁿ where n is the number of atom *types* in the
// platform and m_i is the desired number of instances of atom type i. The
// structure (ℕⁿ, ∪, ∩, ≤) is a complete lattice:
//
//   (m ∪ o)_i = max(m_i, o_i)   -- Meta-Molecule covering both (join)
//   (m ∩ o)_i = min(m_i, o_i)   -- atoms collectively needed (meet)
//   m ≤ o  iff  ∀i: m_i ≤ o_i   -- partial order
//   |m|   = Σ m_i               -- determinant: total atoms required
//   (m ⊖ o)_i = max(o_i - m_i,0) -- atoms still missing for o given m
//
// (The paper writes the last operator with a ⊖-like symbol and argument order
// "m ⊖ o = what o needs beyond m"; we keep that order.)
//
// These five operations are the entire vocabulary of the Atom scheduling
// problem (§4.2-4.4), so they live in their own tiny library with
// property-based tests for the algebraic laws.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "base/types.h"

namespace rispp {

class Molecule {
 public:
  Molecule() = default;

  /// Zero molecule (neutral element of ∪) of the given dimension.
  explicit Molecule(std::size_t dimension) : counts_(dimension, 0) {}

  Molecule(std::initializer_list<AtomCount> counts) : counts_(counts) {}

  explicit Molecule(std::vector<AtomCount> counts) : counts_(std::move(counts)) {}

  /// Unit-Molecule u_t: one instance of atom type t (eq. (1) alphabet).
  static Molecule unit(std::size_t dimension, AtomTypeId type);

  std::size_t dimension() const { return counts_.size(); }
  bool empty() const;  // all-zero?

  AtomCount operator[](std::size_t i) const { return counts_[i]; }
  AtomCount& operator[](std::size_t i) { return counts_[i]; }
  std::span<const AtomCount> counts() const { return counts_; }

  /// Determinant |m|: total number of atoms required.
  unsigned determinant() const;

  /// Number of distinct atom types with non-zero count.
  unsigned type_count() const;

  bool operator==(const Molecule& rhs) const = default;

  /// "m1,m2,...,mn" — used in logs and golden tests.
  std::string to_string() const;

 private:
  std::vector<AtomCount> counts_;
};

/// Join: Meta-Molecule containing the atoms required to implement both.
Molecule join(const Molecule& a, const Molecule& b);
/// Meet: atoms collectively needed by both.
Molecule meet(const Molecule& a, const Molecule& b);

inline Molecule operator|(const Molecule& a, const Molecule& b) { return join(a, b); }
inline Molecule operator&(const Molecule& a, const Molecule& b) { return meet(a, b); }

/// Partial order m ≤ o iff every component is ≤. Note: !(a<=b) does NOT imply
/// b<=a — molecules can be incomparable (paper's m2=(2,2) vs m4=(1,3)).
bool leq(const Molecule& a, const Molecule& b);

/// available ⊖ wanted: the minimal Meta-Molecule that still has to be loaded
/// to offer `wanted` when `available` is already configured.
Molecule missing(const Molecule& available, const Molecule& wanted);

/// sup M = ∪ over the set (zero molecule if empty, per the neutral element).
Molecule sup(std::span<const Molecule> set, std::size_t dimension);
/// inf M = ∩ over the set. Empty set has no finite representation here, so
/// the caller must pass a non-empty set.
Molecule inf(std::span<const Molecule> set);

/// Decomposes (available ⊖ wanted) into a list of Unit-Molecule type ids —
/// the tokens the scheduling function SF emits (§4.2 eq. (1)).
std::vector<AtomTypeId> unit_decomposition(const Molecule& meta);

}  // namespace rispp
