#include "alg/molecule.h"

#include <algorithm>
#include <cstring>

#include "base/check.h"

namespace rispp {

Molecule Molecule::unit(std::size_t dimension, AtomTypeId type) {
  RISPP_CHECK(type < dimension);
  Molecule u(dimension);
  u[type] = 1;
  return u;
}

void Molecule::assign_zero(std::size_t dimension) {
  size_ = dimension;
  if (dimension > kInlineCapacity) heap_.resize(dimension);
  std::fill_n(data(), dimension, AtomCount{0});
  det_ = 0;
  det_valid_ = true;
}

void Molecule::assign(std::span<const AtomCount> counts) {
  size_ = counts.size();
  if (size_ > kInlineCapacity) heap_.resize(size_);
  std::copy(counts.begin(), counts.end(), data());
  det_valid_ = false;
}

bool Molecule::empty() const {
  const AtomCount* d = data();
  return std::all_of(d, d + size_, [](AtomCount c) { return c == 0; });
}

unsigned Molecule::determinant() const {
  if (!det_valid_) {
    const AtomCount* d = data();
    unsigned sum = 0;
    for (std::size_t i = 0; i < size_; ++i) sum += d[i];
    det_ = sum;
    det_valid_ = true;
  }
  return det_;
}

unsigned Molecule::type_count() const {
  const AtomCount* d = data();
  return static_cast<unsigned>(
      std::count_if(d, d + size_, [](AtomCount c) { return c != 0; }));
}

bool Molecule::operator==(const Molecule& rhs) const {
  if (size_ != rhs.size_) return false;
  return std::equal(data(), data() + size_, rhs.data());
}

std::string Molecule::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < size_; ++i) {
    if (i) out += ',';
    out += std::to_string(data()[i]);
  }
  out += ')';
  return out;
}

namespace {
void check_same_dimension(const Molecule& a, const Molecule& b) {
  RISPP_CHECK_MSG(a.dimension() == b.dimension(),
                  "dimension mismatch: " << a.dimension() << " vs " << b.dimension());
}
}  // namespace

Molecule join(const Molecule& a, const Molecule& b) {
  Molecule out = a;
  join_into(out, b);
  return out;
}

Molecule meet(const Molecule& a, const Molecule& b) {
  Molecule out = a;
  meet_into(out, b);
  return out;
}

void join_into(Molecule& acc, const Molecule& m) {
  check_same_dimension(acc, m);
  AtomCount* dst = acc.data();
  const AtomCount* src = m.data();
  for (std::size_t i = 0; i < acc.size_; ++i) dst[i] = std::max(dst[i], src[i]);
  acc.det_valid_ = false;
}

void meet_into(Molecule& acc, const Molecule& m) {
  check_same_dimension(acc, m);
  AtomCount* dst = acc.data();
  const AtomCount* src = m.data();
  for (std::size_t i = 0; i < acc.size_; ++i) dst[i] = std::min(dst[i], src[i]);
  acc.det_valid_ = false;
}

bool leq(const Molecule& a, const Molecule& b) {
  check_same_dimension(a, b);
  for (std::size_t i = 0; i < a.dimension(); ++i)
    if (a[i] > b[i]) return false;
  return true;
}

Molecule missing(const Molecule& available, const Molecule& wanted) {
  Molecule out;
  missing_into(out, available, wanted);
  return out;
}

void missing_into(Molecule& out, const Molecule& available, const Molecule& wanted) {
  check_same_dimension(available, wanted);
  const std::size_t n = available.dimension();
  // Element i is written only from element i of the inputs, so `out` may
  // alias either operand; resize before capturing the input pointers (a
  // no-op when aliased, since the dimensions already match).
  out.size_ = n;
  if (n > Molecule::kInlineCapacity) out.heap_.resize(n);
  AtomCount* dst = out.data();
  const AtomCount* have = available.counts().data();
  const AtomCount* want = wanted.counts().data();
  unsigned sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = want[i] > have[i] ? static_cast<AtomCount>(want[i] - have[i]) : 0;
    sum += dst[i];
  }
  out.det_ = sum;
  out.det_valid_ = true;
}

unsigned missing_determinant(const Molecule& available, const Molecule& wanted) {
  check_same_dimension(available, wanted);
  const AtomCount* have = available.counts().data();
  const AtomCount* want = wanted.counts().data();
  unsigned sum = 0;
  for (std::size_t i = 0; i < available.dimension(); ++i)
    if (want[i] > have[i]) sum += static_cast<unsigned>(want[i] - have[i]);
  return sum;
}

unsigned join_determinant(const Molecule& a, const Molecule& b) {
  check_same_dimension(a, b);
  const AtomCount* pa = a.counts().data();
  const AtomCount* pb = b.counts().data();
  unsigned sum = 0;
  for (std::size_t i = 0; i < a.dimension(); ++i) sum += std::max(pa[i], pb[i]);
  return sum;
}

Molecule sup(std::span<const Molecule> set, std::size_t dimension) {
  Molecule acc(dimension);
  for (const Molecule& m : set) join_into(acc, m);
  return acc;
}

Molecule inf(std::span<const Molecule> set) {
  RISPP_CHECK_MSG(!set.empty(), "inf of an empty Molecule set is unbounded");
  Molecule acc = set.front();
  for (std::size_t i = 1; i < set.size(); ++i) meet_into(acc, set[i]);
  return acc;
}

std::vector<AtomTypeId> unit_decomposition(const Molecule& meta) {
  std::vector<AtomTypeId> units;
  units.reserve(meta.determinant());
  append_unit_decomposition(meta, units);
  return units;
}

void append_unit_decomposition(const Molecule& meta, std::vector<AtomTypeId>& out) {
  for (std::size_t i = 0; i < meta.dimension(); ++i)
    for (AtomCount k = 0; k < meta[i]; ++k) out.push_back(static_cast<AtomTypeId>(i));
}

}  // namespace rispp
