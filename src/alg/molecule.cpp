#include "alg/molecule.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace rispp {

Molecule Molecule::unit(std::size_t dimension, AtomTypeId type) {
  RISPP_CHECK(type < dimension);
  Molecule u(dimension);
  u[type] = 1;
  return u;
}

bool Molecule::empty() const {
  return std::all_of(counts_.begin(), counts_.end(), [](AtomCount c) { return c == 0; });
}

unsigned Molecule::determinant() const {
  return std::accumulate(counts_.begin(), counts_.end(), 0u);
}

unsigned Molecule::type_count() const {
  return static_cast<unsigned>(
      std::count_if(counts_.begin(), counts_.end(), [](AtomCount c) { return c != 0; }));
}

std::string Molecule::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(counts_[i]);
  }
  out += ')';
  return out;
}

namespace {
void check_same_dimension(const Molecule& a, const Molecule& b) {
  RISPP_CHECK_MSG(a.dimension() == b.dimension(),
                  "dimension mismatch: " << a.dimension() << " vs " << b.dimension());
}
}  // namespace

Molecule join(const Molecule& a, const Molecule& b) {
  check_same_dimension(a, b);
  Molecule out(a.dimension());
  for (std::size_t i = 0; i < a.dimension(); ++i) out[i] = std::max(a[i], b[i]);
  return out;
}

Molecule meet(const Molecule& a, const Molecule& b) {
  check_same_dimension(a, b);
  Molecule out(a.dimension());
  for (std::size_t i = 0; i < a.dimension(); ++i) out[i] = std::min(a[i], b[i]);
  return out;
}

bool leq(const Molecule& a, const Molecule& b) {
  check_same_dimension(a, b);
  for (std::size_t i = 0; i < a.dimension(); ++i)
    if (a[i] > b[i]) return false;
  return true;
}

Molecule missing(const Molecule& available, const Molecule& wanted) {
  check_same_dimension(available, wanted);
  Molecule out(available.dimension());
  for (std::size_t i = 0; i < available.dimension(); ++i)
    out[i] = wanted[i] > available[i] ? static_cast<AtomCount>(wanted[i] - available[i]) : 0;
  return out;
}

Molecule sup(std::span<const Molecule> set, std::size_t dimension) {
  Molecule acc(dimension);
  for (const Molecule& m : set) acc = join(acc, m);
  return acc;
}

Molecule inf(std::span<const Molecule> set) {
  RISPP_CHECK_MSG(!set.empty(), "inf of an empty Molecule set is unbounded");
  Molecule acc = set.front();
  for (std::size_t i = 1; i < set.size(); ++i) acc = meet(acc, set[i]);
  return acc;
}

std::vector<AtomTypeId> unit_decomposition(const Molecule& meta) {
  std::vector<AtomTypeId> units;
  units.reserve(meta.determinant());
  for (std::size_t i = 0; i < meta.dimension(); ++i)
    for (AtomCount k = 0; k < meta[i]; ++k) units.push_back(static_cast<AtomTypeId>(i));
  return units;
}

}  // namespace rispp
