#include "dse/engine.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <utility>

#include "base/check.h"
#include "base/metrics.h"
#include "base/prng.h"
#include "baselines/software_only.h"
#include "dpg/makespan_memo.h"
#include "isa/si.h"
#include "rtm/run_time_manager.h"
#include "sched/registry.h"
#include "select/selection.h"
#include "sim/executor.h"

namespace rispp::dse {
namespace {

/// One full replay-based evaluation of an already-built set. The engine
/// scores through the run-batched fast path with the RTM's decision cache
/// on; the naive baseline replays scalar with it off. Bit-exact either way
/// (tests/replay_equivalence_test, rtm decision-cache equivalence).
EvalResult evaluate_set(const SpecialInstructionSet& set, const WorkloadTrace& trace,
                        Cycles reference, const std::vector<std::vector<std::uint64_t>>& seeds,
                        const DseOptions& options, unsigned slices, ReplayMode mode,
                        bool decision_cache) {
  // Candidate-evaluation wall time: the distribution the eval-cache and
  // early-abandon layers are trying to shrink (safe from pool workers; the
  // histogram shards per thread).
  const auto eval_started = std::chrono::steady_clock::now();
  EvalResult result;
  result.slices = slices;
  result.total_cycles.reserve(options.ac_budgets.size());
  double sum = 0.0;
  for (const unsigned budget : options.ac_budgets) {
    const auto scheduler = make_scheduler(options.scheduler);
    RtmConfig config;
    config.container_count = budget;
    config.scheduler = scheduler.get();
    config.enable_decision_cache = decision_cache;
    RunTimeManager rtm(&set, trace.hot_spots.size(), config);
    for (HotSpotId hs = 0; hs < seeds.size(); ++hs)
      for (SiId si = 0; si < seeds[hs].size(); ++si)
        if (seeds[hs][si] != 0) rtm.seed_forecast(hs, si, seeds[hs][si]);
    const SimResult sim = run_trace(trace, rtm, nullptr, mode);
    result.total_cycles.push_back(sim.total_cycles);
    sum += static_cast<double>(reference) / static_cast<double>(sim.total_cycles);
  }
  result.mean_speedup = sum / static_cast<double>(options.ac_budgets.size());
  static MetricHistogram& eval_ns = metric_histogram("dse.candidate_eval_ns");
  eval_ns.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - eval_started)
          .count()));
  return result;
}

}  // namespace

unsigned design_slices(const config::PlatformSpec& spec) {
  unsigned total = 0;
  for (const AtomType& type : spec.atoms) {
    unsigned widest = 1;
    for (const config::PlatformSi& si : spec.sis)
      for (const auto& [name, cap] : si.caps)
        if (name == type.name) widest = std::max(widest, cap);
    total += type.slices * widest;
  }
  return total;
}

Cycles software_reference_cycles(const SpecialInstructionSet& set,
                                 const WorkloadTrace& trace) {
  SoftwareOnlyBackend backend(&set);
  return run_trace(trace, backend).total_cycles;
}

std::vector<std::vector<std::uint64_t>> trace_forecast_seeds(const WorkloadTrace& trace) {
  std::vector<std::uint64_t> instance_count(trace.hot_spots.size(), 0);
  std::vector<std::vector<std::uint64_t>> totals(trace.hot_spots.size());
  for (const auto& inst : trace.instances) {
    ++instance_count[inst.hot_spot];
    auto& t = totals[inst.hot_spot];
    const auto bump = [&t](SiId si, std::uint64_t n) {
      if (si >= t.size()) t.resize(si + 1, 0);
      t[si] += n;
    };
    if (!inst.runs.empty())
      for (const SiRun& run : inst.runs) bump(run.si, run.count);
    else
      for (const SiId si : inst.executions) bump(si, 1);
  }
  for (HotSpotId hs = 0; hs < totals.size(); ++hs)
    if (instance_count[hs] != 0)
      for (auto& total : totals[hs])
        total = (total + instance_count[hs] - 1) / instance_count[hs];  // ceil mean
  return totals;
}

std::uint64_t eval_context_digest(const WorkloadTrace& trace, Cycles reference_cycles,
                                  const DseOptions& options) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fingerprint_mix(h, options.scheduler.size());
  for (const char c : options.scheduler) h = fingerprint_mix(h, static_cast<unsigned char>(c));
  h = fingerprint_mix(h, options.ac_budgets.size());
  for (const unsigned budget : options.ac_budgets) h = fingerprint_mix(h, budget);
  h = fingerprint_mix(h, trace.hot_spots.size());
  for (const auto& hs : trace.hot_spots) {
    h = fingerprint_mix(h, hs.sis.size());
    for (const SiId si : hs.sis) h = fingerprint_mix(h, si);
    h = fingerprint_mix(h, hs.per_execution_overhead);
  }
  h = fingerprint_mix(h, trace.instances.size());
  h = fingerprint_mix(h, trace.total_si_executions());
  h = fingerprint_mix(h, trace.overhead_cycles());
  h = fingerprint_mix(h, reference_cycles);
  return h;
}

EvalResult evaluate_candidate(const config::PlatformSpec& spec, const WorkloadTrace& trace,
                              Cycles reference_cycles, const DseOptions& options) {
  MakespanMemo* memo =
      options.makespan_memo != nullptr ? options.makespan_memo : &MakespanMemo::global();
  const SpecialInstructionSet set = config::build_platform(spec, memo);
  return evaluate_set(set, trace, reference_cycles, trace_forecast_seeds(trace), options,
                      design_slices(spec), ReplayMode::kBatched, /*decision_cache=*/true);
}

EvalResult evaluate_candidate_naive(const config::PlatformSpec& spec,
                                    const WorkloadTrace& trace, Cycles reference_cycles,
                                    const DseOptions& options) {
  const SpecialInstructionSet set = config::build_platform(spec);  // no memo
  return evaluate_set(set, trace, reference_cycles, trace_forecast_seeds(trace), options,
                      design_slices(spec), ReplayMode::kScalar, /*decision_cache=*/false);
}

DseResult run_dse(const WorkloadTrace& trace, const config::PlatformSpec& handbuilt,
                  const DseOptions& options) {
  RISPP_CHECK_MSG(has_scheduler(options.scheduler),
                  "unknown scheduler " << options.scheduler);
  RISPP_CHECK(!options.ac_budgets.empty());
  RISPP_CHECK(options.population > 0);
  ThreadPool* pool = options.pool != nullptr ? options.pool : &ThreadPool::global();
  EvalCache* cache = options.eval_cache != nullptr ? options.eval_cache : &EvalCache::global();
  MakespanMemo* memo =
      options.makespan_memo != nullptr ? options.makespan_memo : &MakespanMemo::global();

  DseResult result;

  // The exploration seed and the speedup denominator. Work preservation
  // makes the software reference of the seed valid for every candidate.
  DesignPoint seed_point = degraded_seed(handbuilt);
  const SpecialInstructionSet seed_set = config::build_platform(seed_point.spec, memo);
  result.reference_cycles = software_reference_cycles(seed_set, trace);
  const std::uint64_t ctx = eval_context_digest(trace, result.reference_cycles, options);
  const auto seeds = trace_forecast_seeds(trace);
  const unsigned max_budget =
      *std::max_element(options.ac_budgets.begin(), options.ac_budgets.end());

  // Serial-path scoring through the eval cache.
  const auto score_cached = [&](const SpecialInstructionSet& set, std::uint64_t fp,
                                unsigned slices) -> EvalResult {
    if (const auto hit = cache->lookup(fp, ctx)) {
      ++result.cache_hits;
      return *hit;
    }
    const EvalResult r = evaluate_set(set, trace, result.reference_cycles, seeds, options, slices,
                                      ReplayMode::kBatched, /*decision_cache=*/true);
    ++result.replays;
    cache->insert(fp, ctx, r);
    return r;
  };

  // The hand-built ISA scored under the same context — the comparison
  // target; never a member of the population or the front.
  {
    const SpecialInstructionSet set = config::build_platform(handbuilt, memo);
    result.handbuilt_eval = score_cached(set, fingerprint(set), design_slices(handbuilt));
  }

  ParetoFront front;
  std::vector<DseCandidate> survivors;
  {
    const std::uint64_t fp = fingerprint(seed_set);
    const EvalResult eval = score_cached(seed_set, fp, design_slices(seed_point.spec));
    front.insert(ParetoPoint{eval.slices, eval.mean_speedup, fp});
    survivors.push_back(DseCandidate{std::move(seed_point), fp, eval});
  }

  Xoshiro256 rng(options.seed);

  /// Per-proposal slot for the parallel build stage.
  struct Slot {
    bool valid = false;
    std::uint64_t fp = 0;
    unsigned slices = 0;
    double bound = 0.0;
    std::optional<SpecialInstructionSet> set;
  };

  for (unsigned gen = 0; gen < options.generations; ++gen) {
    if (result.replays >= options.budget) break;
    ++result.generations_run;

    // 1. Serial proposal: children of every survivor, deduplicated by spec
    // digest within this generation only — a revisit of an earlier
    // generation's point is kept and becomes an eval-cache hit.
    std::vector<DesignPoint> proposals;
    std::set<std::uint64_t> generation_digests;
    for (const DseCandidate& survivor : survivors) {
      for (unsigned m = 0; m < options.mutations_per_survivor; ++m) {
        DesignPoint child = survivor.point;
        const unsigned edits = 1 + static_cast<unsigned>(rng.bounded(3));
        bool mutated = false;
        for (unsigned e = 0; e < edits; ++e) mutated = mutate(child, rng) || mutated;
        if (!mutated) continue;
        if (!generation_digests.insert(spec_digest(child.spec)).second) continue;
        proposals.push_back(std::move(child));
      }
    }
    result.proposals += proposals.size();
    if (proposals.empty()) continue;

    // 2. Parallel build: SI set (molecule enumeration through the memo —
    // untouched graphs never reschedule), fingerprint, area, speedup bound.
    std::vector<Slot> slots(proposals.size());
    pool->parallel_for(proposals.size(), [&](std::size_t i) {
      try {
        SpecialInstructionSet set = config::build_platform(proposals[i].spec, memo);
        Slot& slot = slots[i];
        slot.fp = fingerprint(set);
        slot.slices = design_slices(proposals[i].spec);
        // Upper bound on any selection's speedup: every SI always at the
        // fastest molecule that fits the widest AC budget (select/selection.h
        // best_case_latency is a sound floor per execution).
        Cycles ideal = trace.overhead_cycles();
        for (SiId si = 0; si < set.si_count(); ++si)
          ideal += trace.executions_of(si) * best_case_latency(set, si, max_budget);
        slot.bound = static_cast<double>(result.reference_cycles) /
                     static_cast<double>(std::max<Cycles>(ideal, 1));
        slot.set.emplace(std::move(set));
        slot.valid = true;
      } catch (const std::logic_error&) {
        // Candidate violates an SI-set invariant (e.g. a molecule no faster
        // than its trap): drop it.
      }
    });

    // 3. Serial triage in index order: fingerprint dedupe, cache lookup,
    // early abandon against the current front, evaluation budget.
    std::vector<std::optional<EvalResult>> scored(proposals.size());
    std::vector<std::size_t> replay_list;
    std::set<std::uint64_t> generation_fps;
    for (std::size_t i = 0; i < proposals.size(); ++i) {
      Slot& slot = slots[i];
      if (!slot.valid) {
        ++result.invalid;
        continue;
      }
      if (!generation_fps.insert(slot.fp).second) continue;  // same observable ISA
      if (const auto hit = cache->lookup(slot.fp, ctx)) {
        ++result.cache_hits;
        scored[i] = *hit;
        continue;
      }
      if (front.dominates(slot.slices, slot.bound)) {
        ++result.abandoned;
        continue;
      }
      if (result.replays + replay_list.size() >= options.budget) continue;
      replay_list.push_back(i);
    }

    // 4. Parallel replay of the cache misses that survived the bound.
    pool->parallel_for(replay_list.size(), [&](std::size_t j) {
      const std::size_t i = replay_list[j];
      scored[i] = evaluate_set(*slots[i].set, trace, result.reference_cycles, seeds, options,
                               slots[i].slices, ReplayMode::kBatched, /*decision_cache=*/true);
    });
    result.replays += replay_list.size();
    for (const std::size_t i : replay_list) cache->insert(slots[i].fp, ctx, *scored[i]);

    // 5. Serial commit: front + survivor population.
    for (std::size_t i = 0; i < proposals.size(); ++i) {
      if (!scored[i].has_value()) continue;
      front.insert(ParetoPoint{scored[i]->slices, scored[i]->mean_speedup, slots[i].fp});
      survivors.push_back(DseCandidate{std::move(proposals[i]), slots[i].fp, *scored[i]});
    }
    std::sort(survivors.begin(), survivors.end(),
              [](const DseCandidate& a, const DseCandidate& b) {
                if (a.eval.mean_speedup != b.eval.mean_speedup)
                  return a.eval.mean_speedup > b.eval.mean_speedup;
                if (a.eval.slices != b.eval.slices) return a.eval.slices < b.eval.slices;
                return a.fingerprint < b.fingerprint;
              });
    std::set<std::uint64_t> kept;
    std::erase_if(survivors,
                  [&kept](const DseCandidate& c) { return !kept.insert(c.fingerprint).second; });
    if (survivors.size() > options.population) survivors.resize(options.population);
  }

  RISPP_CHECK(!survivors.empty());
  result.best = survivors.front();
  result.front = front.points();
  result.platform_text = config::emit_platform(result.best.point.spec);
  result.discovered_vs_handbuilt =
      result.handbuilt_eval.mean_speedup > 0.0
          ? result.best.eval.mean_speedup / result.handbuilt_eval.mean_speedup
          : 0.0;
  metric_gauge("dse.search.best_speedup").set(result.best.eval.mean_speedup);
  metric_gauge("dse.search.vs_handbuilt").set(result.discovered_vs_handbuilt);
  return result;
}

}  // namespace rispp::dse
