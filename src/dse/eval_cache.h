// Process-wide memoization of candidate evaluations.
//
// The DSE proposal stream revisits design points constantly — cap mutations
// commute, fuse/split are inverses — so the same ISA keeps reappearing
// across generations (and across engine runs inside one process, e.g. the
// bench harness's repetitions). The cache keys a finished evaluation on the
// candidate's isa fingerprint() combined with a digest of everything else
// that shapes the score (scheduler, forecast seeds, AC budgets, trace shape,
// software reference) so a hit can only ever replay a bit-identical
// evaluation. Hits/misses are metered as dse.eval_cache.{hits,misses}.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/types.h"

namespace rispp::dse {

/// The score of one candidate ISA against one workload context.
struct EvalResult {
  /// Mean over the AC budgets of (software reference / RTM total cycles).
  double mean_speedup = 0.0;
  /// RTM total cycles per AC budget (DseOptions::ac_budgets order).
  std::vector<Cycles> total_cycles;
  /// Area proxy: sum over atom types of slices x the widest per-SI cap.
  unsigned slices = 0;
  bool operator==(const EvalResult&) const = default;
};

class EvalCache {
 public:
  /// Returns the memoized result for (fingerprint, context), recording a hit
  /// or miss metric either way.
  std::optional<EvalResult> lookup(std::uint64_t isa_fingerprint, std::uint64_t context);

  /// Inserts (first writer wins; a concurrent duplicate insert of the same
  /// key necessarily carries the same value — evaluation is deterministic).
  void insert(std::uint64_t isa_fingerprint, std::uint64_t context, const EvalResult& result);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const;
  std::size_t size() const;
  void clear();

  /// The process-wide instance (leaked, never destructed). Engines default to
  /// it; tests inject a private one for isolation.
  static EvalCache& global();

 private:
  struct Key {
    std::uint64_t fingerprint = 0;
    std::uint64_t context = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // Splitmix-style finalizer over the xor; both halves are already FNV
      // digests, so a cheap combine is enough.
      std::uint64_t x = k.fingerprint ^ (k.context * 0x9e3779b97f4a7c15ull);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, EvalResult, KeyHash> map_;
  Stats stats_;
};

}  // namespace rispp::dse
