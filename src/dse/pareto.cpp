#include "dse/pareto.h"

#include <algorithm>

namespace rispp::dse {

bool ParetoFront::dominates(unsigned slices, double speedup) const {
  // Sorted by slices ascending; only members at or below `slices` qualify.
  for (const ParetoPoint& p : points_) {
    if (p.slices > slices) break;
    if (p.speedup >= speedup) return true;
  }
  return false;
}

bool ParetoFront::insert(const ParetoPoint& point) {
  if (dominates(point.slices, point.speedup)) return false;
  // Evict members the newcomer dominates (slices >= point's, speedup <=).
  std::erase_if(points_, [&](const ParetoPoint& p) {
    return p.slices >= point.slices && p.speedup <= point.speedup;
  });
  const auto at = std::lower_bound(
      points_.begin(), points_.end(), point,
      [](const ParetoPoint& a, const ParetoPoint& b) { return a.slices < b.slices; });
  points_.insert(at, point);
  return true;
}

}  // namespace rispp::dse
