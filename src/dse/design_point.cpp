#include "dse/design_point.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>

#include "base/check.h"

namespace rispp::dse {
namespace {

using config::PlatformBlock;
using config::PlatformLayer;
using config::PlatformSi;
using config::PlatformSpec;

const AtomType* find_type(const std::vector<AtomType>& atoms, const std::string& name) {
  for (const AtomType& a : atoms)
    if (a.name == name) return &a;
  return nullptr;
}

unsigned cap_of(const PlatformSi& si, const std::string& name) {
  for (const auto& [n, cap] : si.caps)
    if (n == name) return cap;
  return 1;
}

/// Sets `name`'s cap to max(existing, cap) — split re-grants capacity without
/// ever revoking what another layer of the same SI already holds.
void raise_cap(PlatformSi& si, const std::string& name, unsigned cap) {
  for (auto& [n, c] : si.caps) {
    if (n == name) {
      c = std::max(c, cap);
      return;
    }
  }
  si.caps.emplace_back(name, cap);
}

// ---- mutation operators (structural edit only; mutate() canonicalizes and
// ---- enforces the global bounds afterwards) -------------------------------

bool try_cap_up(DesignPoint& p, Xoshiro256& rng) {
  PlatformSi& si = p.spec.sis[rng.bounded(p.spec.sis.size())];
  if (si.caps.empty()) return false;
  auto& entry = si.caps[rng.bounded(si.caps.size())];
  if (entry.second + 1 > si_occurrences(si, entry.first)) return false;
  ++entry.second;
  return true;
}

bool try_cap_down(DesignPoint& p, Xoshiro256& rng) {
  PlatformSi& si = p.spec.sis[rng.bounded(p.spec.sis.size())];
  if (si.caps.empty()) return false;
  auto& entry = si.caps[rng.bounded(si.caps.size())];
  if (entry.second <= 1) return false;
  --entry.second;
  return true;
}

bool try_fuse(DesignPoint& p, Xoshiro256& rng) {
  PlatformSi& si = p.spec.sis[rng.bounded(p.spec.sis.size())];
  PlatformBlock& block = si.blocks[rng.bounded(si.blocks.size())];
  if (block.layers.size() < 2) return false;
  const std::size_t i = rng.bounded(block.layers.size() - 1);
  const PlatformLayer a = block.layers[i];
  const PlatformLayer b = block.layers[i + 1];
  const unsigned g = std::gcd(a.count, b.count);

  // One fused node serially covers (a.count/g) of a plus (b.count/g) of b;
  // adjacent identical elementary parts coalesce ("QSubx2+QSub" -> "QSubx3").
  std::vector<AtomPart> parts;
  const auto append = [&](const std::string& atom, unsigned scale) {
    for (AtomPart part : parts_of(p, atom)) {
      part.count *= scale;
      if (!parts.empty() && parts.back().atom == part.atom)
        parts.back().count += part.count;
      else
        parts.push_back(std::move(part));
    }
  };
  append(a.atom, a.count / g);
  append(b.atom, b.count / g);
  if (parts.size() > kMaxFusedParts) return false;
  const std::string name = fused_atom_name(parts);
  if (name.size() > 64) return false;

  const unsigned fused_cap = std::max(1u, std::min(cap_of(si, a.atom), cap_of(si, b.atom)));
  p.composition.emplace(name, std::move(parts));  // same name => same parts
  block.layers[i] = PlatformLayer{name, g};
  block.layers.erase(block.layers.begin() + static_cast<std::ptrdiff_t>(i) + 1);
  raise_cap(si, name, fused_cap);
  return true;
}

bool try_split(DesignPoint& p, Xoshiro256& rng) {
  struct Site {
    std::size_t si, block, layer;
  };
  std::vector<Site> sites;
  for (std::size_t s = 0; s < p.spec.sis.size(); ++s)
    for (std::size_t b = 0; b < p.spec.sis[s].blocks.size(); ++b)
      for (std::size_t l = 0; l < p.spec.sis[s].blocks[b].layers.size(); ++l)
        if (p.composition.contains(p.spec.sis[s].blocks[b].layers[l].atom))
          sites.push_back(Site{s, b, l});
  if (sites.empty()) return false;
  const Site site = sites[rng.bounded(sites.size())];
  PlatformSi& si = p.spec.sis[site.si];
  PlatformBlock& block = si.blocks[site.block];
  const PlatformLayer fused = block.layers[site.layer];
  const std::vector<AtomPart>& parts = p.composition.at(fused.atom);
  const unsigned fused_cap = cap_of(si, fused.atom);

  std::vector<PlatformLayer> replacement;
  replacement.reserve(parts.size());
  for (const AtomPart& part : parts)
    replacement.push_back(PlatformLayer{part.atom, fused.count * part.count});
  block.layers.erase(block.layers.begin() + static_cast<std::ptrdiff_t>(site.layer));
  block.layers.insert(block.layers.begin() + static_cast<std::ptrdiff_t>(site.layer),
                      replacement.begin(), replacement.end());
  // The fused pipes' capacity re-expands into the parts they covered.
  for (const AtomPart& part : parts) raise_cap(si, part.atom, fused_cap * part.count);
  return true;
}

}  // namespace

unsigned si_occurrences(const PlatformSi& si, const std::string& name) {
  unsigned occ = 0;
  for (const PlatformBlock& block : si.blocks)
    for (const PlatformLayer& layer : block.layers)
      if (layer.atom == name) occ += block.repeat * layer.count;
  return occ;
}

unsigned long si_molecule_grid(const config::PlatformSi& si) {
  std::map<std::string, unsigned> occ;
  for (const PlatformBlock& block : si.blocks)
    for (const PlatformLayer& layer : block.layers)
      occ[layer.atom] += block.repeat * layer.count;
  unsigned long grid = 1;
  for (const auto& [name, occurrences] : occ) {
    unsigned effective = occurrences;
    for (const auto& [cap_name, cap] : si.caps)
      if (cap_name == name && cap != 0) effective = std::min(effective, cap);
    if (grid > kMaxMoleculesPerSi * kMaxMoleculesPerSi / std::max(1u, effective))
      return kMaxMoleculesPerSi * kMaxMoleculesPerSi;  // saturate, avoid overflow
    grid *= effective;
  }
  return grid;
}

std::vector<AtomPart> parts_of(const DesignPoint& point, const std::string& name) {
  const auto it = point.composition.find(name);
  if (it != point.composition.end()) return it->second;
  return {AtomPart{name, 1}};
}

std::string fused_atom_name(const std::vector<AtomPart>& parts) {
  std::ostringstream os;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) os << "+";
    os << parts[i].atom;
    if (parts[i].count != 1) os << "x" << parts[i].count;
  }
  return os.str();
}

AtomType make_fused_type(const DesignPoint& point, const std::vector<AtomPart>& parts) {
  AtomType fused;
  fused.name = fused_atom_name(parts);
  fused.op_latency = 0;
  fused.sw_op_cycles = 0;
  fused.slices = 0;
  for (const AtomPart& part : parts) {
    const AtomType* elem = find_type(point.elementary, part.atom);
    RISPP_CHECK_MSG(elem != nullptr, "fused part is not elementary: " << part.atom);
    fused.op_latency += part.count * elem->op_latency;
    fused.sw_op_cycles += part.count * elem->sw_op_cycles;
    fused.slices += part.count * elem->slices;
  }
  return fused;
}

void canonicalize(DesignPoint& point) {
  std::set<std::string> used;
  for (const PlatformSi& si : point.spec.sis)
    for (const PlatformBlock& block : si.blocks)
      for (const PlatformLayer& layer : block.layers) used.insert(layer.atom);

  std::vector<AtomType> atoms;
  atoms.reserve(used.size());
  for (const std::string& name : used) {
    if (const AtomType* elem = find_type(point.elementary, name)) {
      atoms.push_back(*elem);
    } else {
      const auto it = point.composition.find(name);
      RISPP_CHECK_MSG(it != point.composition.end(), "atom without definition: " << name);
      atoms.push_back(make_fused_type(point, it->second));
    }
  }
  point.spec.atoms = std::move(atoms);

  for (PlatformSi& si : point.spec.sis) {
    std::map<std::string, unsigned> occ;
    for (const PlatformBlock& block : si.blocks)
      for (const PlatformLayer& layer : block.layers)
        occ[layer.atom] += block.repeat * layer.count;
    std::map<std::string, unsigned> caps;
    for (const auto& [name, cap] : si.caps)
      if (occ.contains(name)) caps[name] = std::max(caps[name], cap);
    si.caps.clear();
    for (const auto& [name, occurrences] : occ) {
      const unsigned cap = caps.contains(name) ? caps[name] : 1u;
      si.caps.emplace_back(name, std::clamp(cap, 1u, occurrences));
    }
  }
}

std::uint64_t spec_digest(const config::PlatformSpec& spec) {
  const std::string text = config::emit_platform(spec);
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

DesignPoint degraded_seed(const config::PlatformSpec& handbuilt) {
  DesignPoint point;
  point.spec = handbuilt;
  point.elementary = handbuilt.atoms;
  for (PlatformSi& si : point.spec.sis) {
    si.molecule_target = 0;   // candidates keep every enumerated molecule
    si.min_determinant = 0;
    for (auto& [name, cap] : si.caps) cap = 1;
  }
  canonicalize(point);  // explicit cap=1 for every used type
  return point;
}

bool mutate(DesignPoint& point, Xoshiro256& rng) {
  // cap-up biased: growing instance counts is the main speedup axis from the
  // degraded seed; fuse/split re-partition, cap-down backs out of area.
  enum class Op { kCapUp, kCapDown, kFuse, kSplit };
  static constexpr Op kOps[] = {Op::kCapUp, Op::kCapUp, Op::kCapUp, Op::kCapUp,
                                Op::kCapDown, Op::kFuse, Op::kFuse, Op::kSplit};
  for (int attempt = 0; attempt < 24; ++attempt) {
    DesignPoint trial = point;
    bool edited = false;
    switch (kOps[rng.bounded(std::size(kOps))]) {
      case Op::kCapUp: edited = try_cap_up(trial, rng); break;
      case Op::kCapDown: edited = try_cap_down(trial, rng); break;
      case Op::kFuse: edited = try_fuse(trial, rng); break;
      case Op::kSplit: edited = try_split(trial, rng); break;
    }
    if (!edited) continue;
    canonicalize(trial);
    if (trial.spec.atoms.size() > 24) continue;  // keep fingerprints cheap
    bool bounded = true;
    for (const PlatformSi& si : trial.spec.sis)
      if (si_molecule_grid(si) > kMaxMoleculesPerSi) {
        bounded = false;
        break;
      }
    if (!bounded) continue;
    point = std::move(trial);
    return true;
  }
  return false;
}

}  // namespace rispp::dse
