// The slices/speedup Pareto front of evaluated candidates.
//
// Two objectives: area (slices, minimize) and workload speedup (maximize).
// The front keeps every non-dominated candidate, identified by its isa
// fingerprint, and doubles as the early-abandon reference: a proposal whose
// *upper-bound* speedup at its area is already dominated cannot enter the
// front, so the engine skips its replay entirely.
#pragma once

#include <cstdint>
#include <vector>

namespace rispp::dse {

struct ParetoPoint {
  unsigned slices = 0;     // minimize
  double speedup = 0.0;    // maximize
  std::uint64_t fingerprint = 0;
  bool operator==(const ParetoPoint&) const = default;
};

class ParetoFront {
 public:
  /// True iff some member has slices <= `slices` AND speedup >= `speedup` —
  /// i.e. a (weakly) dominating point exists. A candidate whose speedup
  /// upper bound is dominated can be abandoned unevaluated.
  bool dominates(unsigned slices, double speedup) const;

  /// Inserts `point` unless dominated; evicts members it dominates. Points
  /// with equal (slices, speedup) keep the first-inserted fingerprint (the
  /// newcomer is "dominated" — deterministic, insertion-order independent
  /// given distinct scores). Returns true iff the point entered the front.
  bool insert(const ParetoPoint& point);

  /// Members sorted by slices ascending (speedup then strictly increases).
  const std::vector<ParetoPoint>& points() const { return points_; }

 private:
  std::vector<ParetoPoint> points_;  // kept sorted by slices ascending
};

}  // namespace rispp::dse
