#include "dse/eval_cache.h"

#include "base/metrics.h"

namespace rispp::dse {

std::optional<EvalResult> EvalCache::lookup(std::uint64_t isa_fingerprint,
                                            std::uint64_t context) {
  static MetricCounter& hits = metric_counter("dse.eval_cache.hits");
  static MetricCounter& misses = metric_counter("dse.eval_cache.misses");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(Key{isa_fingerprint, context});
  if (it == map_.end()) {
    ++stats_.misses;
    misses.add();
    return std::nullopt;
  }
  ++stats_.hits;
  hits.add();
  return it->second;
}

void EvalCache::insert(std::uint64_t isa_fingerprint, std::uint64_t context,
                       const EvalResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.emplace(Key{isa_fingerprint, context}, result);
}

EvalCache::Stats EvalCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t EvalCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

void EvalCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  stats_ = Stats{};
}

EvalCache& EvalCache::global() {
  static EvalCache* cache = new EvalCache();  // leaked: alive for atexit users
  return *cache;
}

}  // namespace rispp::dse
