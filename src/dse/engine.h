// Parallel automatic SI design-space exploration (DESIGN §10).
//
// Given a recorded workload trace and a hand-built platform spec, the engine
// searches atom-type partitionings and instance-cap assignments (ISEGEN-style
// iterative improvement over work-preserving mutations, dse/design_point.h)
// for ISAs that maximize replayed workload speedup per FPGA slice. The search
// runs in deterministic generations:
//
//   1. serial   — a seeded PRNG proposes children of the survivor population
//                 (deduplicated by emitted-spec digest within the generation;
//                 cross-generation revisits are *kept* so they become eval-
//                 cache hits instead of re-simulations);
//   2. parallel — candidates build their SpecialInstructionSet (molecule
//                 enumeration through the process-wide MakespanMemo: only
//                 graphs the mutation touched ever reschedule) and compute
//                 their speedup upper bound, into per-proposal slots;
//   3. serial   — eval-cache lookups, then early abandon: a candidate whose
//                 bound is already dominated by the Pareto front at its area
//                 can never enter the front and is dropped unevaluated;
//   4. parallel — surviving misses replay the trace through the Run-Time
//                 Manager (run-batched fast path) at each AC budget;
//   5. serial   — results enter the cache, the slices/speedup Pareto front,
//                 and the next survivor population.
//
// Every parallel stage writes slot arrays and the PRNG never leaves stage 1,
// so the discovered ISA and front are invariant under the worker thread
// count (tests/dse_test.cpp). Scores are mean speedups over the AC budgets
// relative to a software-only replay; work preservation makes that reference
// a single number valid for every candidate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/parallel.h"
#include "config/platform_parser.h"
#include "dse/design_point.h"
#include "dse/eval_cache.h"
#include "dse/pareto.h"
#include "sim/trace.h"

namespace rispp::dse {

struct DseOptions {
  /// Search shape: `generations` rounds of `mutations_per_survivor` children
  /// per member of a `population`-sized survivor set.
  unsigned generations = 16;
  unsigned population = 8;
  unsigned mutations_per_survivor = 10;
  /// Evaluation budget: at most this many full trace replays (cache hits and
  /// abandoned candidates are free); the search stops when it is exhausted.
  unsigned budget = 1200;
  std::uint64_t seed = 1;
  /// SI Scheduler strategy candidates are scored under (sched/registry.h).
  std::string scheduler = "HEF";
  /// Atom Container budgets scored per candidate; the mean speedup over them
  /// is the optimization objective.
  std::vector<unsigned> ac_budgets = {8, 16};
  /// Injection points (null = the process-wide instances).
  ThreadPool* pool = nullptr;
  EvalCache* eval_cache = nullptr;
  MakespanMemo* makespan_memo = nullptr;
};

/// One evaluated member of the search.
struct DseCandidate {
  DesignPoint point;
  std::uint64_t fingerprint = 0;  // isa fingerprint() of the built set
  EvalResult eval;
};

struct DseResult {
  /// Highest-mean-speedup candidate discovered (the emitted platform).
  DseCandidate best;
  /// emit_platform(best.point.spec) — what `rispp_dse --out` writes.
  std::string platform_text;
  std::vector<ParetoPoint> front;
  /// The hand-built platform scored under the same context (never enters the
  /// population or the front; reported for the ratio).
  EvalResult handbuilt_eval;
  double discovered_vs_handbuilt = 0.0;
  /// Software-only replay of the trace — the speedup denominator.
  Cycles reference_cycles = 0;
  // Search accounting.
  std::uint64_t proposals = 0;      // deduplicated children proposed
  std::uint64_t invalid = 0;        // failed to build a valid SI set
  std::uint64_t cache_hits = 0;     // scored from the eval cache
  std::uint64_t abandoned = 0;      // pruned by the bound before replay
  std::uint64_t replays = 0;        // full evaluations actually run
  unsigned generations_run = 0;
};

/// Area proxy of a spec: sum over atom types of slices x the widest cap any
/// SI grants the type (the fabric capacity the ISA can exploit).
unsigned design_slices(const config::PlatformSpec& spec);

/// Software-only replay of `trace` against `set` — the speedup reference.
Cycles software_reference_cycles(const SpecialInstructionSet& set,
                                 const WorkloadTrace& trace);

/// Design-time forecast seeds derived from the trace itself: per (hot spot,
/// SI), the mean executions per instance of that hot spot. Keeps the engine
/// workload-agnostic — any trace carries its own seeds.
std::vector<std::vector<std::uint64_t>> trace_forecast_seeds(const WorkloadTrace& trace);

/// Digest of everything besides the candidate ISA that shapes an evaluation:
/// scheduler, AC budgets, trace shape and the software reference. Composes
/// the eval-cache key with the isa fingerprint.
std::uint64_t eval_context_digest(const WorkloadTrace& trace, Cycles reference_cycles,
                                  const DseOptions& options);

/// One engine fast-path evaluation of a candidate: builds the spec through
/// `options.makespan_memo` (null = the process-wide memo) and replays the
/// trace run-batched with the RTM decision cache on — exactly how run_dse
/// scores an eval-cache miss, minus the cache itself. Bit-exact with
/// evaluate_candidate_naive (fuzzed in tests/dse_test.cpp); benched against
/// it in bench/micro_ops.cpp (BM_DseEvaluateCandidate).
EvalResult evaluate_candidate(const config::PlatformSpec& spec, const WorkloadTrace& trace,
                              Cycles reference_cycles, const DseOptions& options);

/// One naive full re-simulation of a candidate: builds the spec without the
/// MakespanMemo and replays the trace at every AC budget through the scalar
/// reference executor with the RTM decision cache off — no memoization at
/// any layer. Bit-exact with the engine's fast path (asserted by the driver
/// self-check and tests), so it serves both as the throughput baseline the
/// bench compares against and as the oracle the equivalence tests fuzz
/// with. Throws std::logic_error for invalid specs.
EvalResult evaluate_candidate_naive(const config::PlatformSpec& spec,
                                    const WorkloadTrace& trace, Cycles reference_cycles,
                                    const DseOptions& options);

/// Runs the search seeded from degraded_seed(handbuilt). `trace` must have
/// been recorded against an ISA with the same SI names/order as `handbuilt`
/// (mutations preserve both, so the trace stays valid for every candidate).
DseResult run_dse(const WorkloadTrace& trace, const config::PlatformSpec& handbuilt,
                  const DseOptions& options = {});

}  // namespace rispp::dse
