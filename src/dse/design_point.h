// One point of the SI design space, and the mutations that move through it.
//
// A DesignPoint wraps a config::PlatformSpec — the exact IR the `.rispp`
// platform language round-trips through — plus the bookkeeping the search
// needs to mutate it soundly: the immutable *elementary* atom table the
// exploration started from, and the composition of every fused atom it has
// created (which elementary atoms, how many of each, executed serially).
//
// All mutations are work-preserving: they never change the total number of
// elementary operations an SI performs, only how those operations are
// partitioned into reloadable atoms and how many instances of each atom the
// run-time selection may use. Concretely (ISEGEN-style iterative
// improvement moves):
//
//   * cap up/down  — grant or revoke one instance of one atom type for one
//     SI (molecule-level parallelism knob; bounded by occurrences and by the
//     per-SI enumeration budget).
//   * fuse         — merge two adjacent layers [A xC1][B xC2] of one block
//     into one layer [A(C1/g)+B(C2/g) xg], g = gcd(C1, C2): a coarser atom
//     executing its parts serially (op latency, software cycles and slices
//     are the part sums). Fewer, bigger atoms: cheaper to manage, costlier
//     to reconfigure, less schedulable parallelism.
//   * split        — the exact inverse: expand a fused layer back into its
//     constituent elementary layers.
//
// Work preservation makes every candidate's trap latency — and therefore the
// software-only replay of the workload — identical to the seed's, which is
// what lets one recorded trace and one software-reference cycle count score
// every candidate (asserted by tests/dse_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/prng.h"
#include "config/platform_parser.h"

namespace rispp::dse {

/// `count` serial repetitions of one elementary atom inside a fused atom.
struct AtomPart {
  std::string atom;
  unsigned count = 1;
  bool operator==(const AtomPart&) const = default;
};

struct DesignPoint {
  config::PlatformSpec spec;
  /// The elementary atom table of the seed platform; fused types derive
  /// their properties from it. Never mutated, never garbage-collected.
  std::vector<AtomType> elementary;
  /// Fused atom name -> serial elementary composition. Elementary atoms are
  /// absent (their composition is themselves).
  std::map<std::string, std::vector<AtomPart>> composition;
};

/// Enumeration-cost guard: a mutation may not push one SI's molecule grid
/// (product over used types of min(cap, occurrences)) past this.
inline constexpr unsigned long kMaxMoleculesPerSi = 512;
/// Fused atoms may combine at most this many distinct elementary parts.
inline constexpr std::size_t kMaxFusedParts = 6;

/// Total occurrences of atom `name` across `si`'s blocks.
unsigned si_occurrences(const config::PlatformSi& si, const std::string& name);

/// The molecule grid size enumerate_molecules would visit for `si`
/// (types without an explicit cap count at their occurrence bound).
unsigned long si_molecule_grid(const config::PlatformSi& si);

/// Serial composition of atom `name`: the mapped parts for fused atoms,
/// {{name, 1}} for elementary ones.
std::vector<AtomPart> parts_of(const DesignPoint& point, const std::string& name);

/// Canonical name of a fused composition: "QSubx2+HadCore" style, parts in
/// composition order, xN suffix omitted when N == 1.
std::string fused_atom_name(const std::vector<AtomPart>& parts);

/// AtomType of a fused composition: op latency / software cycles / slices
/// are the part-weighted sums over the elementary table (serial execution).
AtomType make_fused_type(const DesignPoint& point, const std::vector<AtomPart>& parts);

/// Rewrites the point into canonical form: spec.atoms holds exactly the
/// atoms some SI layer uses, sorted by name; every SI caps every type it
/// uses (missing entries default to 1, all clamped to [1, occurrences]) with
/// entries sorted by name. Two points describing observably identical
/// platforms canonicalize to equal specs, so the spec digest (and the built
/// set's fingerprint) deduplicate equivalent candidates.
void canonicalize(DesignPoint& point);

/// FNV-1a digest of the emitted platform text — the proposal-level dedupe
/// key (cheaper than building the set; the ISA fingerprint dedupes again
/// after the build).
std::uint64_t spec_digest(const config::PlatformSpec& spec);

/// The exploration seed derived from a hand-built platform: same SIs, same
/// layer structure, but every instance cap lowered to 1 and the molecule
/// thinning (molecule_target / min_determinant) removed — a minimal ISA the
/// search must grow back toward (and past) the hand-built one.
DesignPoint degraded_seed(const config::PlatformSpec& handbuilt);

/// Applies one random valid mutation (cap up/down, fuse, split) drawn from
/// `rng`, canonicalizing afterwards. Returns false when no valid mutation
/// was found (bounded rejection sampling) — the point is then unchanged.
bool mutate(DesignPoint& point, Xoshiro256& rng);

}  // namespace rispp::dse
