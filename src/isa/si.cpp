#include "isa/si.h"

#include <algorithm>

#include "base/check.h"
#include "dpg/makespan_memo.h"

namespace rispp {

const MoleculeImpl& SpecialInstruction::molecule(MoleculeId m) const {
  RISPP_CHECK(m < molecules.size());
  return molecules[m];
}

Cycles SpecialInstruction::latency(MoleculeId m) const {
  if (m == kSoftwareMolecule) return software_latency;
  return molecule(m).latency;
}

SpecialInstructionSet::SpecialInstructionSet(AtomLibrary library)
    : library_(std::make_unique<AtomLibrary>(std::move(library))) {}

namespace {

/// Thins a consistent molecule list to `target` entries, keeping the
/// smallest (entry 0) and the fastest, spacing the rest evenly. Subsets of a
/// consistent set stay consistent: removing elements cannot create a
/// dominating smaller sibling.
std::vector<MoleculeImpl> thin_molecules(std::vector<MoleculeImpl> all, unsigned target) {
  if (target == 0 || all.size() <= target) return all;
  // Index of the fastest molecule (ties: biggest determinant last wins).
  std::size_t fastest = 0;
  for (std::size_t i = 1; i < all.size(); ++i)
    if (all[i].latency <= all[fastest].latency) fastest = i;

  std::vector<MoleculeImpl> kept;
  kept.reserve(target);
  for (unsigned k = 0; k < target; ++k) {
    // Even spacing across the sorted list; force the last pick to `fastest`.
    std::size_t idx = (k + 1 == target)
                          ? fastest
                          : (k * (all.size() - 1)) / (target - 1);
    if (idx >= all.size()) idx = all.size() - 1;
    kept.push_back(all[idx]);
  }
  // Deduplicate while preserving order (even spacing may collide).
  std::vector<MoleculeImpl> unique;
  for (const auto& m : kept) {
    const bool seen = std::any_of(unique.begin(), unique.end(),
                                  [&](const MoleculeImpl& u) { return u.atoms == m.atoms; });
    if (!seen) unique.push_back(m);
  }
  // Fill any holes created by deduplication from the remaining pool.
  for (const auto& m : all) {
    if (unique.size() >= target) break;
    const bool seen = std::any_of(unique.begin(), unique.end(),
                                  [&](const MoleculeImpl& u) { return u.atoms == m.atoms; });
    if (!seen) unique.push_back(m);
  }
  std::sort(unique.begin(), unique.end(), [](const MoleculeImpl& a, const MoleculeImpl& b) {
    const unsigned da = a.atoms.determinant(), db = b.atoms.determinant();
    if (da != db) return da < db;
    return a.latency < b.latency;
  });
  return unique;
}

}  // namespace

SiId SpecialInstructionSet::add_si(const std::string& name, DataPathGraph graph,
                                   const Molecule& instance_caps, Cycles trap_overhead,
                                   unsigned molecule_target, unsigned min_determinant,
                                   MakespanMemo* makespan_memo) {
  RISPP_CHECK_MSG(!find(name).has_value(), "duplicate SI " << name);
  RISPP_CHECK(&graph.library() == library_.get());

  EnumerationOptions options;
  options.instance_caps = instance_caps;
  std::vector<MoleculeImpl> molecules = enumerate_molecules(graph, options, makespan_memo);
  if (min_determinant > 0)
    std::erase_if(molecules, [&](const MoleculeImpl& m) {
      return m.atoms.determinant() < min_determinant;
    });
  RISPP_CHECK_MSG(molecule_target == 0 || molecules.size() >= molecule_target,
                  name << ": graph yields only " << molecules.size()
                       << " molecules, target " << molecule_target);
  molecules = thin_molecules(std::move(molecules), molecule_target);

  SpecialInstruction si{
      .id = static_cast<SiId>(sis_.size()),
      .name = name,
      .graph = std::move(graph),
      .molecules = std::move(molecules),
      .software_latency = 0,
  };
  si.software_latency = si.graph.software_cycles() + trap_overhead;
  // The trap must be the slowest implementation, otherwise upgrading would
  // be pointless for this SI.
  for (const MoleculeImpl& m : si.molecules)
    RISPP_CHECK_MSG(m.latency < si.software_latency,
                    name << ": molecule " << m.atoms.to_string() << " slower than trap");
  sis_.push_back(std::move(si));
  return sis_.back().id;
}

const SpecialInstruction& SpecialInstructionSet::si(SiId id) const {
  RISPP_CHECK(id < sis_.size());
  return sis_[id];
}

std::optional<SiId> SpecialInstructionSet::find(const std::string& name) const {
  for (const auto& si : sis_)
    if (si.name == name) return si.id;
  return std::nullopt;
}

MoleculeId SpecialInstructionSet::fastest_available(SiId id, const Molecule& available) const {
  const SpecialInstruction& s = si(id);
  MoleculeId best = kSoftwareMolecule;
  Cycles best_latency = s.software_latency;
  for (MoleculeId m = 0; m < s.molecules.size(); ++m) {
    if (!leq(s.molecules[m].atoms, available)) continue;
    if (s.molecules[m].latency < best_latency) {
      best = m;
      best_latency = s.molecules[m].latency;
    }
  }
  return best;
}

Cycles SpecialInstructionSet::fastest_available_latency(SiId id, const Molecule& available) const {
  return si(id).latency(fastest_available(id, available));
}

std::uint64_t fingerprint_mix(std::uint64_t hash, std::uint64_t value) {
  // FNV-1a over the value's 8 bytes.
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xff;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace {

std::uint64_t mix_string(std::uint64_t hash, const std::string& s) {
  hash = fingerprint_mix(hash, s.size());
  for (const char c : s) hash = fingerprint_mix(hash, static_cast<unsigned char>(c));
  return hash;
}

}  // namespace

std::uint64_t fingerprint(const SpecialInstructionSet& set) {
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV offset basis
  const AtomLibrary& library = set.library();
  hash = fingerprint_mix(hash, library.size());
  for (AtomTypeId t = 0; t < library.size(); ++t) {
    const AtomType& type = library.type(t);
    hash = mix_string(hash, type.name);
    hash = fingerprint_mix(hash, type.op_latency);
    hash = fingerprint_mix(hash, type.sw_op_cycles);
    hash = fingerprint_mix(hash, type.slices);
  }
  hash = fingerprint_mix(hash, set.si_count());
  for (SiId id = 0; id < set.si_count(); ++id) {
    const SpecialInstruction& si = set.si(id);
    hash = mix_string(hash, si.name);
    hash = fingerprint_mix(hash, si.software_latency);
    hash = fingerprint_mix(hash, si.molecules.size());
    for (const MoleculeImpl& m : si.molecules) {
      hash = fingerprint_mix(hash, m.latency);
      for (const AtomCount count : m.atoms.counts()) hash = fingerprint_mix(hash, count);
    }
  }
  return hash;
}

}  // namespace rispp
