// Molecule candidate generation — equations (3) and (4) of §4.3.
//
// Eq. (3): given the selected Molecules M (one per SI of the hot spot), the
// candidate set M' contains every molecule o of the same SI with o <= m —
// all intermediate upgrade steps on a path to sup(M).
//
// Eq. (4): at run time, before each scheduling step, M' is cleaned against
// the currently available/scheduled atoms a: a candidate m survives iff it
// still needs atoms (|a ⊖ m| > 0) AND it would be faster than the fastest
// available/scheduled molecule of its SI (bestLatency). This is what removes
// the paper's m4=(1,3) when m2=(2,2) is already composed — unless the warm
// start made m4 cheap.
#pragma once

#include <span>
#include <vector>

#include "alg/molecule.h"
#include "isa/si.h"

namespace rispp {

/// Eq. (3): all smaller molecules of the selected SIs (including the selected
/// molecules themselves). Sorted by (si, molecule id); no duplicates as long
/// as `selected` holds at most one molecule per SI (checked).
std::vector<SiRef> smaller_candidates(const SpecialInstructionSet& set,
                                      std::span<const SiRef> selected);
/// Same, reusing `out`'s capacity (cleared first) — the UpgradeState hot path.
void smaller_candidates_into(const SpecialInstructionSet& set,
                             std::span<const SiRef> selected, std::vector<SiRef>& out);

/// Eq. (4) predicate for one candidate: true iff the candidate still needs
/// atoms beyond `available` and beats `best_latency_for_its_si`.
bool candidate_is_live(const SpecialInstructionSet& set, const SiRef& candidate,
                       const Molecule& available, Cycles best_latency_for_its_si);

/// Applies eq. (4) in place: erases dead candidates from M'.
void clean_candidates(const SpecialInstructionSet& set, std::vector<SiRef>& candidates,
                      const Molecule& available, std::span<const Cycles> best_latency_per_si);

}  // namespace rispp
