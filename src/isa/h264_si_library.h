// The H.264 encoder SI library of Table 1.
//
// Nine Special Instructions across the three hot spots of the encoder
// (Figure 1): Motion Estimation (SAD, SATD), Encoding Engine ((I)DCT,
// (I)HT 2x2, (I)HT 4x4, MC, IPred HDC, IPred VDC) and Loop Filter (LF_BS4).
// Thirteen shared atom types implement them; atom counts and molecule counts
// per SI match Table 1 exactly (asserted in tests and printed by
// bench/table1_si_inventory).
//
// The data-path graphs mirror the functional kernels in src/h264/: e.g. the
// MC SI is Figure 3's BytePack -> PointFilter -> Clip3 pipeline, where
// PointFilter is the 6-tap half-pel interpolator of h264/interpolate.h.
#pragma once

#include "isa/si.h"

namespace rispp::h264sis {

/// Atom type names in the library (indices are stable and dense).
inline constexpr const char* kSadRow = "SADRow";
inline constexpr const char* kQSub = "QSub";
inline constexpr const char* kHadCore = "HadCore";
inline constexpr const char* kSav = "SAV";
inline constexpr const char* kRepack = "Repack";
inline constexpr const char* kTransformRow = "TransformRow";
inline constexpr const char* kQuantCore = "QuantCore";
inline constexpr const char* kBytePack = "BytePack";
inline constexpr const char* kPointFilter = "PointFilter";
inline constexpr const char* kClip3 = "Clip3";
inline constexpr const char* kPredAvg = "PredAvg";
inline constexpr const char* kEdgeCond = "EdgeCond";
inline constexpr const char* kFiltCore = "FiltCore";

/// SI names (Table 1 rows).
inline constexpr const char* kSad = "SAD";
inline constexpr const char* kSatd = "SATD";
inline constexpr const char* kDct = "(I)DCT";
inline constexpr const char* kHt2x2 = "(I)HT 2x2";
inline constexpr const char* kHt4x4 = "(I)HT 4x4";
inline constexpr const char* kMc = "MC 4";
inline constexpr const char* kIpredHdc = "IPred HDC";
inline constexpr const char* kIpredVdc = "IPred VDC";
inline constexpr const char* kLfBs4 = "LF_BS4";

/// Builds the full Table 1 instruction set.
rispp::SpecialInstructionSet build_h264_si_set();

}  // namespace rispp::h264sis
