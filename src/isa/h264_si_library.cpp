#include "isa/h264_si_library.h"

#include "base/check.h"

namespace rispp::h264sis {
namespace {

using rispp::AtomLibrary;
using rispp::AtomType;
using rispp::AtomTypeId;
using rispp::Cycles;
using rispp::DataPathGraph;
using rispp::Molecule;
using rispp::NodeId;
using rispp::SpecialInstructionSet;

/// Exception entry/exit cost of the SI trap (§3: synchronous exception).
constexpr Cycles kTrapOverhead = 64;

AtomLibrary build_library() {
  AtomLibrary lib;
  // name, hw op latency, sw emulation cycles per op, FPGA slices.
  lib.add({kSadRow, 2, 64, 410});       // 16-pixel row |a-b| + accumulate
  lib.add({kQSub, 1, 24, 330});         // packed 4x subtract
  lib.add({kHadCore, 2, 48, 540});      // 4-point Hadamard butterfly
  lib.add({kSav, 1, 20, 290});          // sum of absolute values
  lib.add({kRepack, 1, 12, 230});       // byte lane shuffle
  lib.add({kTransformRow, 2, 40, 500}); // 4-point integer DCT row
  lib.add({kQuantCore, 2, 36, 470});    // multiply-shift quantizer
  lib.add({kBytePack, 1, 16, 340});     // Figure 3: input byte packing
  lib.add({kPointFilter, 2, 56, 620});  // Figure 3: 6-tap half-pel filter
  lib.add({kClip3, 1, 12, 210});        // Figure 3: clip to [0,255]
  lib.add({kPredAvg, 1, 24, 300});      // DC prediction averaging
  lib.add({kEdgeCond, 1, 20, 350});     // deblocking edge condition
  lib.add({kFiltCore, 2, 44, 580});     // deblocking strong filter
  return lib;
}

AtomTypeId id_of(const AtomLibrary& lib, const char* name) {
  auto id = lib.find(name);
  RISPP_CHECK_MSG(id.has_value(), "unknown atom type " << name);
  return *id;
}

Molecule caps(const AtomLibrary& lib, std::initializer_list<std::pair<const char*, unsigned>> list) {
  Molecule m(lib.size());
  for (const auto& [name, cap] : list) m[id_of(lib, name)] = static_cast<rispp::AtomCount>(cap);
  return m;
}

}  // namespace

SpecialInstructionSet build_h264_si_set() {
  SpecialInstructionSet set(build_library());
  const AtomLibrary& lib = set.library();

  const AtomTypeId sadrow = id_of(lib, kSadRow);
  const AtomTypeId qsub = id_of(lib, kQSub);
  const AtomTypeId had = id_of(lib, kHadCore);
  const AtomTypeId sav = id_of(lib, kSav);
  const AtomTypeId repack = id_of(lib, kRepack);
  const AtomTypeId trow = id_of(lib, kTransformRow);
  const AtomTypeId quant = id_of(lib, kQuantCore);
  const AtomTypeId bytepack = id_of(lib, kBytePack);
  const AtomTypeId pfilter = id_of(lib, kPointFilter);
  const AtomTypeId clip = id_of(lib, kClip3);
  const AtomTypeId predavg = id_of(lib, kPredAvg);
  const AtomTypeId edgecond = id_of(lib, kEdgeCond);
  const AtomTypeId filtcore = id_of(lib, kFiltCore);

  // --- SAD: 16x16 block as 16 independent row SADs (1 type, 3 molecules).
  {
    DataPathGraph g(&lib);
    g.add_layer(sadrow, 16);
    set.add_si(kSad, std::move(g), caps(lib, {{kSadRow, 3}}), kTrapOverhead, 3);
  }

  // --- SATD: 16 4x4 blocks; per block Repack -> 2 QSub -> horizontal then
  // vertical Hadamard butterflies -> SAV (4 types, 20 molecules).
  {
    DataPathGraph g(&lib);
    for (int block = 0; block < 16; ++block) {
      const NodeId r = g.add_node(repack);
      const auto qs = g.add_layer(qsub, 2, std::vector<NodeId>{r});
      const auto h_hor = g.add_layer(had, 2, qs);
      const auto h_ver = g.add_layer(had, 2, h_hor);
      g.add_layer(sav, 1, h_ver);
    }
    set.add_si(kSatd, std::move(g),
               caps(lib, {{kQSub, 4}, {kHadCore, 6}, {kSav, 3}, {kRepack, 2}}),
               kTrapOverhead, 20, /*min_determinant=*/5);
  }

  // --- (I)DCT: 16 4x4 blocks; Repack -> row transform -> column transform ->
  // quant (3 types, 12 molecules).
  {
    DataPathGraph g(&lib);
    for (int block = 0; block < 16; ++block) {
      const NodeId r = g.add_node(repack);
      const NodeId rows = g.add_node(trow, {r});
      const NodeId cols = g.add_node(trow, {rows});
      g.add_node(quant, {cols});
    }
    set.add_si(kDct, std::move(g),
               caps(lib, {{kTransformRow, 4}, {kQuantCore, 3}, {kRepack, 2}}),
               kTrapOverhead, 12);
  }

  // --- (I)HT 2x2: chroma DC Hadamard, two planes (1 type, 2 molecules).
  {
    DataPathGraph g(&lib);
    g.add_layer(had, 2);
    set.add_si(kHt2x2, std::move(g), caps(lib, {{kHadCore, 2}}), kTrapOverhead, 2);
  }

  // --- (I)HT 4x4: luma DC Hadamard: 4 row butterflies -> 4 column
  // butterflies -> 4 scaling sums (2 types, 7 molecules).
  {
    DataPathGraph g(&lib);
    const auto rows = g.add_layer(had, 8);
    const auto cols = g.add_layer(had, 4, rows);
    g.add_layer(sav, 8, cols);
    set.add_si(kHt4x4, std::move(g), caps(lib, {{kHadCore, 4}, {kSav, 2}}), kTrapOverhead, 7);
  }

  // --- MC 4: Figure 3 pipeline over 8 4x8 sub-blocks: BytePack x4 ->
  // PointFilter x6 -> Clip3 x2 (3 types, 11 molecules).
  {
    DataPathGraph g(&lib);
    for (int sub = 0; sub < 8; ++sub) {
      const auto packs = g.add_layer(bytepack, 4);
      const auto filters = g.add_layer(pfilter, 6, packs);
      g.add_layer(clip, 2, filters);
    }
    set.add_si(kMc, std::move(g),
               caps(lib, {{kBytePack, 2}, {kPointFilter, 6}, {kClip3, 2}}),
               kTrapOverhead, 11);
  }

  // --- IPred HDC: horizontal DC intra prediction (2 types, 4 molecules).
  {
    DataPathGraph g(&lib);
    const auto avgs = g.add_layer(predavg, 8);
    g.add_layer(clip, 2, avgs);
    set.add_si(kIpredHdc, std::move(g), caps(lib, {{kPredAvg, 3}, {kClip3, 2}}),
               kTrapOverhead, 4);
  }

  // --- IPred VDC: vertical DC intra prediction (1 type, 3 molecules).
  {
    DataPathGraph g(&lib);
    g.add_layer(predavg, 12);
    set.add_si(kIpredVdc, std::move(g), caps(lib, {{kPredAvg, 3}}), kTrapOverhead, 3);
  }

  // --- LF_BS4: strong deblocking of one MB edge: 16 pixel-edge condition
  // checks each feeding a strong filter (2 types, 5 molecules).
  {
    DataPathGraph g(&lib);
    for (int px = 0; px < 16; ++px) {
      const NodeId c = g.add_node(edgecond);
      g.add_node(filtcore, {c});
    }
    set.add_si(kLfBs4, std::move(g), caps(lib, {{kEdgeCond, 2}, {kFiltCore, 4}}),
               kTrapOverhead, 5);
  }

  return set;
}

}  // namespace rispp::h264sis
