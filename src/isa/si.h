// Special Instructions and the platform's SI set.
//
// An SI (e.g. SATD in the H.264 Motion Estimation hot spot) owns a data-path
// graph and a list of Molecules — alternative hardware implementations that
// trade atom count against latency (Table 1 of the paper). The slowest
// implementation is always the trap onto the base instruction set
// ("software molecule", MoleculeId kSoftwareMolecule), triggered
// automatically when the required atoms are not loaded (§3).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "alg/molecule.h"
#include "base/types.h"
#include "dpg/atom_library.h"
#include "dpg/enumerate.h"
#include "dpg/graph.h"

namespace rispp {

class MakespanMemo;  // dpg/makespan_memo.h

struct SpecialInstruction {
  SiId id = 0;
  std::string name;
  DataPathGraph graph;
  /// Hardware molecules, sorted by ascending determinant then latency.
  /// Consistency invariant (checked on construction): no molecule has a
  /// strictly smaller sibling with equal-or-better latency.
  std::vector<MoleculeImpl> molecules;
  /// Trap execution with base instructions (exception entry + emulation).
  Cycles software_latency = 0;

  const MoleculeImpl& molecule(MoleculeId m) const;
  Cycles latency(MoleculeId m) const;  // kSoftwareMolecule -> software_latency
};

/// A concrete implementation choice: one SI plus one of its molecules.
struct SiRef {
  SiId si = 0;
  MoleculeId mol = 0;
  bool operator==(const SiRef&) const = default;
};

class SpecialInstructionSet {
 public:
  explicit SpecialInstructionSet(AtomLibrary library);

  // The library lives at a stable address for the set's lifetime, so
  // DataPathGraphs may point at it.
  SpecialInstructionSet(const SpecialInstructionSet&) = delete;
  SpecialInstructionSet& operator=(const SpecialInstructionSet&) = delete;
  SpecialInstructionSet(SpecialInstructionSet&&) = default;

  const AtomLibrary& library() const { return *library_; }
  std::size_t atom_type_count() const { return library_->size(); }

  /// Registers an SI. Its molecules are enumerated from the graph under
  /// `instance_caps` and — like the paper's manually developed molecule
  /// sets — optionally thinned to `molecule_target` representatives
  /// (smallest and fastest always kept). `min_determinant` drops hardware
  /// molecules below that atom count first: heavyweight SIs (SATD, MC, DCT)
  /// have no tiny implementations — their pipelines only pay off once a
  /// minimum stage balance exists. `trap_overhead` models exception
  /// entry/exit on top of the emulated graph body. `makespan_memo` (optional)
  /// routes the enumeration's list-schedule makespans through a memo — the
  /// DSE engine passes the process-wide one so candidate platforms sharing
  /// graph structure never reschedule; results are bit-identical either way.
  SiId add_si(const std::string& name, DataPathGraph graph, const Molecule& instance_caps,
              Cycles trap_overhead, unsigned molecule_target = 0,
              unsigned min_determinant = 0, MakespanMemo* makespan_memo = nullptr);

  const SpecialInstruction& si(SiId id) const;
  std::size_t si_count() const { return sis_.size(); }
  std::optional<SiId> find(const std::string& name) const;

  Cycles latency(const SiRef& ref) const { return si(ref.si).latency(ref.mol); }

  /// getFastestAvailableMolecule(a): lowest-latency molecule of `si` whose
  /// atoms are all within `available`; software molecule if none is.
  MoleculeId fastest_available(SiId si, const Molecule& available) const;
  Cycles fastest_available_latency(SiId si, const Molecule& available) const;

 private:
  std::unique_ptr<AtomLibrary> library_;
  std::vector<SpecialInstruction> sis_;
};

/// Order-sensitive 64-bit digest of the set's observable contents: atom
/// types (name, latencies, slices), SI names, molecule tables (atom vectors
/// + latencies) and software latencies. Any change that could alter a
/// recorded workload trace changes the fingerprint — cache keys (e.g. the
/// bench trace cache) mix it in so a stale trace is never replayed against
/// an edited library.
std::uint64_t fingerprint(const SpecialInstructionSet& set);

/// FNV-1a accumulator the fingerprint is built from; exposed so callers can
/// keep mixing workload-config fields into the same digest.
std::uint64_t fingerprint_mix(std::uint64_t hash, std::uint64_t value);

}  // namespace rispp
