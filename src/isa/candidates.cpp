#include "isa/candidates.h"

#include <algorithm>

#include "base/check.h"

namespace rispp {

void smaller_candidates_into(const SpecialInstructionSet& set,
                             std::span<const SiRef> selected, std::vector<SiRef>& out) {
  out.clear();
  thread_local std::vector<bool> seen_si;
  seen_si.assign(set.si_count(), false);
  for (const SiRef& sel : selected) {
    RISPP_CHECK_MSG(!seen_si[sel.si], "two selected molecules for SI " << sel.si);
    seen_si[sel.si] = true;
    const SpecialInstruction& si = set.si(sel.si);
    const Molecule& selected_atoms = si.molecule(sel.mol).atoms;
    for (MoleculeId m = 0; m < si.molecules.size(); ++m)
      if (leq(si.molecules[m].atoms, selected_atoms)) out.push_back(SiRef{sel.si, m});
  }
  std::sort(out.begin(), out.end(), [](const SiRef& a, const SiRef& b) {
    return a.si != b.si ? a.si < b.si : a.mol < b.mol;
  });
}

std::vector<SiRef> smaller_candidates(const SpecialInstructionSet& set,
                                      std::span<const SiRef> selected) {
  std::vector<SiRef> out;
  smaller_candidates_into(set, selected, out);
  return out;
}

bool candidate_is_live(const SpecialInstructionSet& set, const SiRef& candidate,
                       const Molecule& available, Cycles best_latency_for_its_si) {
  const MoleculeImpl& impl = set.si(candidate.si).molecule(candidate.mol);
  const bool needs_atoms = missing_determinant(available, impl.atoms) > 0;
  return needs_atoms && impl.latency < best_latency_for_its_si;
}

void clean_candidates(const SpecialInstructionSet& set, std::vector<SiRef>& candidates,
                      const Molecule& available, std::span<const Cycles> best_latency_per_si) {
  RISPP_CHECK(best_latency_per_si.size() == set.si_count());
  std::erase_if(candidates, [&](const SiRef& c) {
    return !candidate_is_live(set, c, available, best_latency_per_si[c.si]);
  });
}

}  // namespace rispp
