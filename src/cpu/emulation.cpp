#include "cpu/emulation.h"

#include "base/check.h"
#include "isa/h264_si_library.h"

namespace rispp::cpu {
namespace {

// Memory layout used by all kernels: operand A at 0x100, operand B at 0x200,
// output at 0x300. kA0/kA1/kA2 carry those base addresses.
constexpr int kSrcA = 0x100;
constexpr int kSrcB = 0x200;
constexpr int kDst = 0x300;

/// abs(t0) -> t0 via the sign-mask trick (4 instructions, branch-free).
void emit_abs_t0(Program& p) {
  p.sra(kT7, kT0, 31);      // mask = t0 >> 31 (all ones if negative)
  p.xor_(kT0, kT0, kT7);
  p.sub(kT0, kT0, kT7);
}

/// SADRow: one 16-pixel row of |a-b| accumulated into v0.
Program sad_row_kernel() {
  Program p;
  p.li(kV0, 0);
  for (int x = 0; x < 16; ++x) {
    p.lbu(kT0, kA0, x);
    p.lbu(kT1, kA1, x);
    p.sub(kT0, kT0, kT1);
    emit_abs_t0(p);
    p.add(kV0, kV0, kT0);
  }
  p.halt();
  return p;
}

/// QSub: packed 4-pixel subtract (residual bytes to words).
Program qsub_kernel() {
  Program p;
  for (int x = 0; x < 4; ++x) {
    p.lbu(kT0, kA0, x);
    p.lbu(kT1, kA1, x);
    p.sub(kT0, kT0, kT1);
    p.sw(kT0, kA2, 4 * x);
  }
  p.halt();
  return p;
}

/// HadCore: one atom op covers two 4-point Hadamard butterflies (a half
/// stage of a 4x4 block).
Program hadcore_kernel() {
  Program p;
  for (int pass = 0; pass < 2; ++pass) {
    const int off = 16 * pass;
    for (int i = 0; i < 4; ++i) p.lw(static_cast<Reg>(kT0 + i), kA0, off + 4 * i);
    // s0=a+c s1=b+d d0=a-c d1=b-d ; out = (s0+s1, d0+d1, s0-s1, d0-d1)
    p.add(kT4, kT0, kT2);
    p.add(kT5, kT1, kT3);
    p.sub(kT6, kT0, kT2);
    p.sub(kT7, kT1, kT3);
    p.add(kT0, kT4, kT5);
    p.add(kT1, kT6, kT7);
    p.sub(kT2, kT4, kT5);
    p.sub(kT3, kT6, kT7);
    for (int i = 0; i < 4; ++i) p.sw(static_cast<Reg>(kT0 + i), kA2, off + 4 * i);
  }
  p.halt();
  return p;
}

/// SAV: sum of absolute values of 4 words into v0.
Program sav_kernel() {
  Program p;
  p.li(kV0, 0);
  for (int i = 0; i < 4; ++i) {
    p.lw(kT0, kA0, 4 * i);
    emit_abs_t0(p);
    p.add(kV0, kV0, kT0);
  }
  p.halt();
  return p;
}

/// Repack: byte-lane shuffle of one word (gather 4 bytes, repack reversed).
Program repack_kernel() {
  Program p;
  for (int i = 0; i < 4; ++i) {
    p.lbu(kT0, kA0, i);
    p.sb(kT0, kA2, 3 - i);
  }
  p.halt();
  return p;
}

/// TransformRow: one atom op transforms two 4-point rows of the block.
Program transform_row_kernel() {
  Program p;
  for (int row = 0; row < 2; ++row) {
    const int off = 16 * row;
    for (int i = 0; i < 4; ++i) p.lw(static_cast<Reg>(kT0 + i), kA0, off + 4 * i);
    // s0=x0+x3 s1=x1+x2 d0=x0-x3 d1=x1-x2
    p.add(kT4, kT0, kT3);
    p.add(kT5, kT1, kT2);
    p.sub(kT6, kT0, kT3);
    p.sub(kT7, kT1, kT2);
    // y0=s0+s1 ; y2=s0-s1 ; y1=2*d0+d1 ; y3=d0-2*d1
    p.add(kT0, kT4, kT5);
    p.sub(kT2, kT4, kT5);
    p.sll(kS0, kT6, 1);
    p.add(kT1, kS0, kT7);
    p.sll(kS1, kT7, 1);
    p.sub(kT3, kT6, kS1);
    for (int i = 0; i < 4; ++i) p.sw(static_cast<Reg>(kT0 + i), kA2, off + 4 * i);
  }
  p.halt();
  return p;
}

/// QuantCore: dead-zone quantization of one coefficient quad
/// (multiply-shift per coefficient).
Program quant_kernel() {
  Program p;
  p.lw(kT1, kA1, 0);         // reciprocal multiplier (shared)
  for (int i = 0; i < 4; ++i) {
    p.lw(kT0, kA0, 4 * i);   // coefficient
    p.sra(kT7, kT0, 31);     // |coeff|
    p.xor_(kT0, kT0, kT7);
    p.sub(kT0, kT0, kT7);
    p.mul(kT2, kT0, kT1);
    p.sra(kT2, kT2, 16);     // scale back
    p.xor_(kT2, kT2, kT7);   // restore sign
    p.sub(kT2, kT2, kT7);
    p.sw(kT2, kA2, 4 * i);
  }
  p.halt();
  return p;
}

/// BytePack: gather 4 strided pixels into one packed word (Figure 3 input
/// packing: the MC source block lives at stride kA1).
Program bytepack_kernel() {
  Program p;
  p.li(kV0, 0);
  p.move(kS0, kA0);
  for (int i = 0; i < 4; ++i) {
    p.lbu(kT0, kS0, 0);
    p.sll(kT0, kT0, 8 * i);
    p.or_(kV0, kV0, kT0);
    if (i != 3) p.add(kS0, kS0, kA1);  // advance by stride
  }
  p.sw(kV0, kA2, 0);
  p.halt();
  return p;
}

void pointfilter_one(Program& p, int out);

/// PointFilter: the 6-tap half-pel filter (1,-5,20,20,-5,1) producing three
/// output pixels from a sliding window (Figure 3's central atom).
Program pointfilter_kernel() {
  Program p;
  for (int out = 0; out < 3; ++out) {
    pointfilter_one(p, out);
  }
  p.halt();
  return p;
}

void pointfilter_one(Program& p, int out) {
  for (int i = 0; i < 6; ++i) p.lbu(static_cast<Reg>(kT0 + i), kA0, out + i);
  p.add(kV0, kT0, kT5);    // a + f
  p.add(kT6, kT1, kT4);    // b + e
  p.sll(kT7, kT6, 2);      // 4*(b+e)
  p.add(kT6, kT6, kT7);    // 5*(b+e)
  p.sub(kV0, kV0, kT6);    // a - 5b - 5e + f
  p.add(kT6, kT2, kT3);    // c + d
  p.sll(kT7, kT6, 4);      // 16*(c+d)
  p.sll(kT6, kT6, 2);      // 4*(c+d)
  p.add(kT6, kT6, kT7);    // 20*(c+d)
  p.add(kV0, kV0, kT6);
  p.addi(kV0, kV0, 16);    // rounding
  p.sra(kV0, kV0, 5);
  p.sb(kV0, kA2, out);
}

/// Clip3: clamp one value to [0,255], branch-free.
Program clip3_kernel() {
  Program p;
  p.lw(kT0, kA0, 0);
  p.sra(kT7, kT0, 31);     // all-ones when negative
  p.li(kT6, -1);
  p.xor_(kT5, kT7, kT6);   // ~mask
  p.and_(kT0, kT0, kT5);   // negative -> 0
  p.li(kT1, 255);
  p.sub(kT2, kT1, kT0);    // 255 - v
  p.sra(kT2, kT2, 31);     // all-ones when v > 255
  p.or_(kT0, kT0, kT2);
  p.andi(kT0, kT0, 255);   // v > 255 -> 255
  p.sw(kT0, kA2, 0);
  p.halt();
  return p;
}

/// PredAvg: accumulate 4 neighbour pixels and average with rounding.
Program predavg_kernel() {
  Program p;
  p.li(kV0, 0);
  for (int i = 0; i < 4; ++i) {
    p.lbu(kT0, kA0, i);
    p.add(kV0, kV0, kT0);
  }
  p.addi(kV0, kV0, 2);
  p.sra(kV0, kV0, 2);
  p.sw(kV0, kA2, 0);
  p.halt();
  return p;
}

/// EdgeCond: the BS4 pixel-line condition |p0-q0|<a && |p1-p0|<b && |q1-q0|<b.
Program edgecond_kernel() {
  Program p;
  p.lbu(kT1, kA0, 2);  // p0
  p.lbu(kT2, kA0, 3);  // q0
  p.sub(kT0, kT1, kT2);
  emit_abs_t0(p);
  p.slti(kV0, kT0, 40);
  p.lbu(kT3, kA0, 1);  // p1
  p.sub(kT0, kT3, kT1);
  emit_abs_t0(p);
  p.slti(kT3, kT0, 12);
  p.and_(kV0, kV0, kT3);
  p.lbu(kT4, kA0, 4);  // q1
  p.sub(kT0, kT4, kT2);
  emit_abs_t0(p);
  p.slti(kT4, kT0, 12);
  p.and_(kV0, kV0, kT4);
  p.sw(kV0, kA2, 0);
  p.halt();
  return p;
}

/// FiltCore: the strong filter update of one pixel line (p1 p0 q0 q1 from
/// p2..q2 with 3/8-tap averaging).
Program filtcore_kernel() {
  Program p;
  for (int i = 0; i < 6; ++i) p.lbu(static_cast<Reg>(kT0 + i), kA0, i);  // p2..q2
  // p0' = (p2 + 2p1 + 2p0 + 2q0 + q1 + 4) >> 3
  p.add(kV0, kT1, kT2);
  p.add(kV0, kV0, kT3);
  p.sll(kV0, kV0, 1);
  p.add(kV0, kV0, kT0);
  p.add(kV0, kV0, kT4);
  p.addi(kV0, kV0, 4);
  p.sra(kV0, kV0, 3);
  p.sb(kV0, kA2, 0);
  // p1' = (p2 + p1 + p0 + q0 + 2) >> 2
  p.add(kS0, kT0, kT1);
  p.add(kS0, kS0, kT2);
  p.add(kS0, kS0, kT3);
  p.addi(kS0, kS0, 2);
  p.sra(kS0, kS0, 2);
  p.sb(kS0, kA2, 1);
  // q0' = (q2 + 2q1 + 2q0 + 2p0 + p1 + 4) >> 3
  p.add(kS1, kT4, kT3);
  p.add(kS1, kS1, kT2);
  p.sll(kS1, kS1, 1);
  p.add(kS1, kS1, kT5);
  p.add(kS1, kS1, kT1);
  p.addi(kS1, kS1, 4);
  p.sra(kS1, kS1, 3);
  p.sb(kS1, kA2, 2);
  // q1' = (q2 + q1 + q0 + p0 + 2) >> 2
  p.add(kS2, kT5, kT4);
  p.add(kS2, kS2, kT3);
  p.add(kS2, kS2, kT2);
  p.addi(kS2, kS2, 2);
  p.sra(kS2, kS2, 2);
  p.sb(kS2, kA2, 3);
  p.halt();
  return p;
}

}  // namespace

Program build_emulation_kernel(const std::string& atom_type) {
  Program p;
  if (atom_type == h264sis::kSadRow) p = sad_row_kernel();
  else if (atom_type == h264sis::kQSub) p = qsub_kernel();
  else if (atom_type == h264sis::kHadCore) p = hadcore_kernel();
  else if (atom_type == h264sis::kSav) p = sav_kernel();
  else if (atom_type == h264sis::kRepack) p = repack_kernel();
  else if (atom_type == h264sis::kTransformRow) p = transform_row_kernel();
  else if (atom_type == h264sis::kQuantCore) p = quant_kernel();
  else if (atom_type == h264sis::kBytePack) p = bytepack_kernel();
  else if (atom_type == h264sis::kPointFilter) p = pointfilter_kernel();
  else if (atom_type == h264sis::kClip3) p = clip3_kernel();
  else if (atom_type == h264sis::kPredAvg) p = predavg_kernel();
  else if (atom_type == h264sis::kEdgeCond) p = edgecond_kernel();
  else if (atom_type == h264sis::kFiltCore) p = filtcore_kernel();
  else RISPP_CHECK_MSG(false, "no emulation kernel for atom type " << atom_type);
  p.finalize();
  return p;
}

EmulationMeasurement measure_atom_emulation(const std::string& atom_type, Cycles table_cycles,
                                            PipelineTiming timing) {
  const Program program = build_emulation_kernel(atom_type);
  Core core(0x1000, timing);
  core.set_reg(kA0, kSrcA);
  core.set_reg(kA1, atom_type == h264sis::kBytePack ? 16 : kSrcB);  // stride vs address
  core.set_reg(kA2, kDst);
  // Representative operands: a mild gradient and a shifted copy.
  for (std::uint32_t i = 0; i < 64; ++i) {
    core.store_byte(kSrcA + i, static_cast<std::uint8_t>(60 + 3 * i));
    core.store_byte(kSrcB + i, static_cast<std::uint8_t>(55 + 3 * i));
  }
  const RunResult run = core.run(program);
  RISPP_CHECK_MSG(run.halted, "emulation kernel for " << atom_type << " did not halt");
  return EmulationMeasurement{atom_type, run.cycles, table_cycles, run.instructions};
}

std::vector<EmulationMeasurement> emulation_report(PipelineTiming timing) {
  const SpecialInstructionSet set = h264sis::build_h264_si_set();
  std::vector<EmulationMeasurement> report;
  for (AtomTypeId t = 0; t < set.library().size(); ++t) {
    const AtomType& type = set.library().type(t);
    report.push_back(measure_atom_emulation(type.name, type.sw_op_cycles, timing));
  }
  return report;
}

}  // namespace rispp::cpu
