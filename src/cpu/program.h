// Program construction with symbolic labels — a miniature assembler.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "cpu/isa.h"

namespace rispp::cpu {

class Program {
 public:
  // --- emission -------------------------------------------------------
  Program& add(Reg rd, Reg rs, Reg rt) { return emit({Opcode::kAdd, rd, rs, rt, 0}); }
  Program& sub(Reg rd, Reg rs, Reg rt) { return emit({Opcode::kSub, rd, rs, rt, 0}); }
  Program& mul(Reg rd, Reg rs, Reg rt) { return emit({Opcode::kMul, rd, rs, rt, 0}); }
  Program& and_(Reg rd, Reg rs, Reg rt) { return emit({Opcode::kAnd, rd, rs, rt, 0}); }
  Program& or_(Reg rd, Reg rs, Reg rt) { return emit({Opcode::kOr, rd, rs, rt, 0}); }
  Program& xor_(Reg rd, Reg rs, Reg rt) { return emit({Opcode::kXor, rd, rs, rt, 0}); }
  Program& slt(Reg rd, Reg rs, Reg rt) { return emit({Opcode::kSlt, rd, rs, rt, 0}); }
  Program& sll(Reg rd, Reg rs, int sh) { return emit({Opcode::kSll, rd, rs, 0, sh}); }
  Program& srl(Reg rd, Reg rs, int sh) { return emit({Opcode::kSrl, rd, rs, 0, sh}); }
  Program& sra(Reg rd, Reg rs, int sh) { return emit({Opcode::kSra, rd, rs, 0, sh}); }
  Program& addi(Reg rd, Reg rs, int imm) { return emit({Opcode::kAddi, rd, rs, 0, imm}); }
  Program& andi(Reg rd, Reg rs, int imm) { return emit({Opcode::kAndi, rd, rs, 0, imm}); }
  Program& ori(Reg rd, Reg rs, int imm) { return emit({Opcode::kOri, rd, rs, 0, imm}); }
  Program& slti(Reg rd, Reg rs, int imm) { return emit({Opcode::kSlti, rd, rs, 0, imm}); }
  Program& li(Reg rd, int imm) { return addi(rd, kZero, imm); }
  Program& move(Reg rd, Reg rs) { return add(rd, rs, kZero); }
  Program& lw(Reg rd, Reg base, int off) { return emit({Opcode::kLw, rd, base, 0, off}); }
  Program& sw(Reg rt, Reg base, int off) { return emit({Opcode::kSw, 0, base, rt, off}); }
  Program& lbu(Reg rd, Reg base, int off) { return emit({Opcode::kLbu, rd, base, 0, off}); }
  Program& sb(Reg rt, Reg base, int off) { return emit({Opcode::kSb, 0, base, rt, off}); }
  Program& beq(Reg rs, Reg rt, const std::string& label) {
    return emit_branch({Opcode::kBeq, 0, rs, rt, 0}, label);
  }
  Program& bne(Reg rs, Reg rt, const std::string& label) {
    return emit_branch({Opcode::kBne, 0, rs, rt, 0}, label);
  }
  Program& bltz(Reg rs, const std::string& label) {
    return emit_branch({Opcode::kBltz, 0, rs, 0, 0}, label);
  }
  Program& bgez(Reg rs, const std::string& label) {
    return emit_branch({Opcode::kBgez, 0, rs, 0, 0}, label);
  }
  Program& j(const std::string& label) { return emit_branch({Opcode::kJ, 0, 0, 0, 0}, label); }
  Program& jr(Reg rs) { return emit({Opcode::kJr, 0, rs, 0, 0}); }
  Program& halt() { return emit({Opcode::kHalt, 0, 0, 0, 0}); }

  /// Binds `name` to the next emitted instruction.
  Program& label(const std::string& name);

  /// Resolves all label references; throws on unknown labels.
  /// Must be called before execution.
  void finalize();

  const std::vector<Instruction>& instructions() const { return instructions_; }
  bool finalized() const { return finalized_; }

 private:
  Program& emit(Instruction inst);
  Program& emit_branch(Instruction inst, const std::string& label);

  std::vector<Instruction> instructions_;
  std::unordered_map<std::string, std::int32_t> labels_;
  std::vector<std::pair<std::size_t, std::string>> fixups_;
  bool finalized_ = false;
};

}  // namespace rispp::cpu
