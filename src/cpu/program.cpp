#include "cpu/program.h"

#include "base/check.h"

namespace rispp::cpu {

Program& Program::emit(Instruction inst) {
  RISPP_CHECK_MSG(!finalized_, "program already finalized");
  instructions_.push_back(inst);
  return *this;
}

Program& Program::emit_branch(Instruction inst, const std::string& label) {
  fixups_.emplace_back(instructions_.size(), label);
  return emit(inst);
}

Program& Program::label(const std::string& name) {
  RISPP_CHECK_MSG(!labels_.contains(name), "duplicate label " << name);
  labels_[name] = static_cast<std::int32_t>(instructions_.size());
  return *this;
}

void Program::finalize() {
  RISPP_CHECK(!finalized_);
  for (const auto& [index, name] : fixups_) {
    const auto it = labels_.find(name);
    RISPP_CHECK_MSG(it != labels_.end(), "undefined label " << name);
    instructions_[index].imm = it->second;
  }
  fixups_.clear();
  finalized_ = true;
}

}  // namespace rispp::cpu
