// Functional + timing model of the 5-stage in-order base pipeline.
//
// Timing: one instruction per cycle, plus
//   * a 1-cycle load-use stall when a load's destination feeds the very next
//     instruction (classic MIPS interlock),
//   * a taken-branch/jump penalty (pipeline refill),
//   * extra cycles for the iterative multiplier.
// Two presets mirror the prototype's base cores: DLX/MIPS and Leon2/SPARC.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "base/types.h"
#include "cpu/program.h"

namespace rispp::cpu {

struct PipelineTiming {
  Cycles taken_branch_penalty = 2;
  Cycles load_use_stall = 1;
  Cycles mul_extra_cycles = 2;  // 3-cycle iterative multiplier

  static PipelineTiming dlx() { return {2, 1, 2}; }
  static PipelineTiming leon2() { return {3, 1, 4}; }
};

struct RunResult {
  std::uint64_t instructions = 0;
  Cycles cycles = 0;
  bool halted = false;  // false: max_instructions exhausted
};

class Core {
 public:
  explicit Core(std::size_t memory_bytes, PipelineTiming timing = PipelineTiming::dlx());

  /// Architectural state access (r0 stays zero).
  std::int32_t reg(Reg r) const { return regs_[r]; }
  void set_reg(Reg r, std::int32_t value);

  std::uint8_t load_byte(std::uint32_t address) const;
  void store_byte(std::uint32_t address, std::uint8_t value);
  std::int32_t load_word(std::uint32_t address) const;
  void store_word(std::uint32_t address, std::int32_t value);

  /// Executes `program` from instruction 0 until kHalt (or the instruction
  /// budget runs out). Registers/memory persist across runs.
  RunResult run(const Program& program, std::uint64_t max_instructions = 10'000'000);

 private:
  PipelineTiming timing_;
  std::array<std::int32_t, kRegisterCount> regs_{};
  std::vector<std::uint8_t> memory_;
};

}  // namespace rispp::cpu
