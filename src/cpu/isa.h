// A small DLX/MIPS-flavoured RISC ISA — the base processor of the prototype
// (paper footnote 4: "for evaluation we are working with a DLX (MIPS) and a
// Leon2 (SPARC V8) based prototype").
//
// The trap implementation of every Special Instruction executes on this
// core; src/cpu/emulation.h holds the per-atom-op emulation kernels and
// measures their cost on the pipeline model, validating the sw_op_cycles
// column of the atom library.
#pragma once

#include <cstdint>

namespace rispp::cpu {

inline constexpr int kRegisterCount = 32;

/// Register aliases (r0 is hardwired zero as on MIPS).
enum Reg : std::uint8_t {
  kZero = 0,
  kA0 = 4,  // arguments
  kA1 = 5,
  kA2 = 6,
  kA3 = 7,
  kT0 = 8,  // temporaries
  kT1 = 9,
  kT2 = 10,
  kT3 = 11,
  kT4 = 12,
  kT5 = 13,
  kT6 = 14,
  kT7 = 15,
  kS0 = 16,  // saved
  kS1 = 17,
  kS2 = 18,
  kS3 = 19,
  kV0 = 2,  // return value
  kRa = 31,
};

enum class Opcode : std::uint8_t {
  // R-type: rd <- rs OP rt
  kAdd, kSub, kMul, kAnd, kOr, kXor, kSlt,
  // Shifts: rd <- rs OP imm
  kSll, kSrl, kSra,
  // I-type: rd <- rs OP imm
  kAddi, kAndi, kOri, kSlti,
  // Memory: rd/rt <-> mem[rs + imm]
  kLw, kSw, kLbu, kSb,
  // Control: branch to absolute instruction index imm
  kBeq, kBne, kBltz, kBgez,
  kJ, kJr,
  kHalt,
};

struct Instruction {
  Opcode op = Opcode::kHalt;
  std::uint8_t rd = 0;  // destination (or compared register for branches)
  std::uint8_t rs = 0;  // first source / base / branch source
  std::uint8_t rt = 0;  // second source / store data / branch source 2
  std::int32_t imm = 0; // immediate / shift amount / branch target index
};

/// True for instructions that write `rd` from memory (load-use hazard).
constexpr bool is_load(Opcode op) { return op == Opcode::kLw || op == Opcode::kLbu; }

/// True for taken-control-flow candidates.
constexpr bool is_branch(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBltz:
    case Opcode::kBgez:
    case Opcode::kJ:
    case Opcode::kJr:
      return true;
    default:
      return false;
  }
}

}  // namespace rispp::cpu
