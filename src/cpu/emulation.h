// Trap-handler emulation kernels: one base-processor routine per atom type,
// each performing the work of ONE atom operation.
//
// These are the bodies the synchronous SI exception executes when atoms are
// not loaded (§3). Running them on the pipeline model grounds the atom
// library's sw_op_cycles column: a test pins the measured cycle counts and
// checks they sit within a small factor of the table (the table models the
// prototype's hand-tuned handlers; these kernels are straightforward
// register-level implementations).
#pragma once

#include <string>
#include <vector>

#include "base/types.h"
#include "cpu/core.h"

namespace rispp::cpu {

struct EmulationMeasurement {
  std::string atom_type;
  Cycles measured_cycles = 0;   // one op on the DLX pipeline
  Cycles table_cycles = 0;      // the atom library's sw_op_cycles
  std::uint64_t instructions = 0;
};

/// Builds the emulation kernel for `atom_type` ("SADRow", "QSub", ...).
/// Throws for unknown types. The program expects its operands pre-staged in
/// memory by measure_atom_emulation and halts when the op is done.
Program build_emulation_kernel(const std::string& atom_type);

/// Runs one op of `atom_type` on a fresh core with representative data and
/// returns its cycle count (deterministic).
EmulationMeasurement measure_atom_emulation(const std::string& atom_type,
                                            Cycles table_cycles,
                                            PipelineTiming timing = PipelineTiming::dlx());

/// All thirteen H.264 atom types measured against the library's table.
std::vector<EmulationMeasurement> emulation_report(PipelineTiming timing = PipelineTiming::dlx());

}  // namespace rispp::cpu
