#include "cpu/core.h"

#include "base/check.h"

namespace rispp::cpu {

Core::Core(std::size_t memory_bytes, PipelineTiming timing)
    : timing_(timing), memory_(memory_bytes, 0) {}

void Core::set_reg(Reg r, std::int32_t value) {
  if (r != kZero) regs_[r] = value;
}

std::uint8_t Core::load_byte(std::uint32_t address) const {
  RISPP_CHECK_MSG(address < memory_.size(), "byte load at " << address);
  return memory_[address];
}

void Core::store_byte(std::uint32_t address, std::uint8_t value) {
  RISPP_CHECK_MSG(address < memory_.size(), "byte store at " << address);
  memory_[address] = value;
}

std::int32_t Core::load_word(std::uint32_t address) const {
  RISPP_CHECK_MSG(address + 3 < memory_.size() && address % 4 == 0,
                  "word load at " << address);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | memory_[address + i];
  return static_cast<std::int32_t>(v);
}

void Core::store_word(std::uint32_t address, std::int32_t value) {
  RISPP_CHECK_MSG(address + 3 < memory_.size() && address % 4 == 0,
                  "word store at " << address);
  auto v = static_cast<std::uint32_t>(value);
  for (int i = 0; i < 4; ++i) {
    memory_[address + i] = static_cast<std::uint8_t>(v & 0xFF);
    v >>= 8;
  }
}

RunResult Core::run(const Program& program, std::uint64_t max_instructions) {
  RISPP_CHECK_MSG(program.finalized(), "finalize() the program first");
  const auto& code = program.instructions();
  RunResult result;

  std::uint32_t pc = 0;
  // Load-use hazard bookkeeping: destination of the previous instruction if
  // it was a load.
  int pending_load_reg = -1;

  while (result.instructions < max_instructions) {
    RISPP_CHECK_MSG(pc < code.size(), "pc " << pc << " out of program");
    const Instruction& inst = code[pc];
    ++result.instructions;
    Cycles cost = 1;

    // Load-use interlock: stall if this instruction reads the register the
    // previous load writes.
    if (pending_load_reg >= 0) {
      const auto uses = [&](std::uint8_t r) { return r == pending_load_reg; };
      bool hazard = false;
      switch (inst.op) {
        case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
        case Opcode::kAnd: case Opcode::kOr: case Opcode::kXor: case Opcode::kSlt:
          hazard = uses(inst.rs) || uses(inst.rt);
          break;
        case Opcode::kSll: case Opcode::kSrl: case Opcode::kSra:
        case Opcode::kAddi: case Opcode::kAndi: case Opcode::kOri: case Opcode::kSlti:
        case Opcode::kLw: case Opcode::kLbu:
          hazard = uses(inst.rs);
          break;
        case Opcode::kSw: case Opcode::kSb:
          hazard = uses(inst.rs) || uses(inst.rt);
          break;
        case Opcode::kBeq: case Opcode::kBne:
          hazard = uses(inst.rs) || uses(inst.rt);
          break;
        case Opcode::kBltz: case Opcode::kBgez: case Opcode::kJr:
          hazard = uses(inst.rs);
          break;
        default:
          break;
      }
      if (hazard) cost += timing_.load_use_stall;
    }
    pending_load_reg = is_load(inst.op) ? inst.rd : -1;

    std::uint32_t next_pc = pc + 1;
    bool taken = false;
    const auto rs = regs_[inst.rs];
    const auto rt = regs_[inst.rt];
    switch (inst.op) {
      case Opcode::kAdd: set_reg(static_cast<Reg>(inst.rd), rs + rt); break;
      case Opcode::kSub: set_reg(static_cast<Reg>(inst.rd), rs - rt); break;
      case Opcode::kMul:
        set_reg(static_cast<Reg>(inst.rd), rs * rt);
        cost += timing_.mul_extra_cycles;
        break;
      case Opcode::kAnd: set_reg(static_cast<Reg>(inst.rd), rs & rt); break;
      case Opcode::kOr: set_reg(static_cast<Reg>(inst.rd), rs | rt); break;
      case Opcode::kXor: set_reg(static_cast<Reg>(inst.rd), rs ^ rt); break;
      case Opcode::kSlt: set_reg(static_cast<Reg>(inst.rd), rs < rt ? 1 : 0); break;
      case Opcode::kSll:
        set_reg(static_cast<Reg>(inst.rd),
                static_cast<std::int32_t>(static_cast<std::uint32_t>(rs) << inst.imm));
        break;
      case Opcode::kSrl:
        set_reg(static_cast<Reg>(inst.rd),
                static_cast<std::int32_t>(static_cast<std::uint32_t>(rs) >> inst.imm));
        break;
      case Opcode::kSra: set_reg(static_cast<Reg>(inst.rd), rs >> inst.imm); break;
      case Opcode::kAddi: set_reg(static_cast<Reg>(inst.rd), rs + inst.imm); break;
      case Opcode::kAndi: set_reg(static_cast<Reg>(inst.rd), rs & inst.imm); break;
      case Opcode::kOri: set_reg(static_cast<Reg>(inst.rd), rs | inst.imm); break;
      case Opcode::kSlti: set_reg(static_cast<Reg>(inst.rd), rs < inst.imm ? 1 : 0); break;
      case Opcode::kLw:
        set_reg(static_cast<Reg>(inst.rd), load_word(static_cast<std::uint32_t>(rs + inst.imm)));
        break;
      case Opcode::kLbu:
        set_reg(static_cast<Reg>(inst.rd), load_byte(static_cast<std::uint32_t>(rs + inst.imm)));
        break;
      case Opcode::kSw: store_word(static_cast<std::uint32_t>(rs + inst.imm), rt); break;
      case Opcode::kSb:
        store_byte(static_cast<std::uint32_t>(rs + inst.imm), static_cast<std::uint8_t>(rt));
        break;
      case Opcode::kBeq: taken = rs == rt; break;
      case Opcode::kBne: taken = rs != rt; break;
      case Opcode::kBltz: taken = rs < 0; break;
      case Opcode::kBgez: taken = rs >= 0; break;
      case Opcode::kJ: taken = true; break;
      case Opcode::kJr:
        taken = true;
        next_pc = static_cast<std::uint32_t>(rs);
        break;
      case Opcode::kHalt:
        result.cycles += cost;
        result.halted = true;
        return result;
    }
    if (taken && inst.op != Opcode::kJr)
      next_pc = static_cast<std::uint32_t>(inst.imm);
    if (taken) {
      cost += timing_.taken_branch_penalty;
      pending_load_reg = -1;  // refill clears the interlock window
    }
    result.cycles += cost;
    pc = next_pc;
  }
  return result;
}

}  // namespace rispp::cpu
