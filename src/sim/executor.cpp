#include "sim/executor.h"

#include "base/check.h"
#include "base/clock.h"
#include "base/metrics.h"
#include "base/trace_event.h"

namespace rispp {

Cycles ExecutionBackend::si_execution_run_latency(SiId si, std::uint64_t count, Cycles now,
                                                  Cycles per_execution_overhead,
                                                  std::vector<LatencySegment>& segments) {
  Cycles total = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const Cycles latency = si_execution_latency(si, now);
    append_latency_segment(segments, 1, latency);
    total += latency;
    now += latency + per_execution_overhead;
  }
  return total;
}

Cycles ExecutionBackend::si_execution_span(std::span<const SiRun> runs, Cycles now,
                                           Cycles per_execution_overhead) {
  std::vector<LatencySegment> segments;
  for (const SiRun& run : runs) {
    segments.clear();
    const Cycles total =
        si_execution_run_latency(run.si, run.count, now, per_execution_overhead, segments);
    now += total + run.count * per_execution_overhead;
  }
  return now;
}

namespace {

/// One simulated-time trace row per replay run: a 'B'/'E' span per hot-spot
/// instance on a fresh lane, so overlapping sweep cells never share a row.
/// All names are interned because the trace flush runs at process exit.
struct InstanceTraceRow {
  bool enabled;
  TraceLane lane = 0;
  std::vector<const char*> names;

  InstanceTraceRow(const WorkloadTrace& trace, const ExecutionBackend& backend)
      : enabled(trace_enabled()) {
    if (!enabled) return;
    lane = trace_new_lane();
    std::string label = "instances: ";
    label += backend.name();
    trace_name_lane(TraceTrack::kExecutor, lane, trace_intern(label));
    names.reserve(trace.hot_spots.size());
    for (const HotSpotInfo& h : trace.hot_spots)
      names.push_back(trace_intern(h.name.empty() ? "hot spot" : h.name));
  }
  void begin(std::size_t hot_spot, Cycles at) const {
    if (enabled)
      trace_begin(TraceTrack::kExecutor, lane, names[hot_spot], us_from_cycles(at));
  }
  void end(std::size_t hot_spot, Cycles at) const {
    if (enabled)
      trace_end(TraceTrack::kExecutor, lane, names[hot_spot], us_from_cycles(at));
  }
};

MetricCounter& hot_spot_entries_counter() {
  static MetricCounter& entries = metric_counter("sim.hot_spot_entries");
  return entries;
}

SimResult run_trace_scalar(const WorkloadTrace& trace, ExecutionBackend& backend,
                           SimStats* stats) {
  SimResult result;
  result.hot_spot_cycles.assign(trace.hot_spots.size(), 0);
  const InstanceTraceRow row(trace, backend);
  MetricCounter& entries = hot_spot_entries_counter();
  Cycles now = 0;
  for (std::size_t idx = 0; idx < trace.instances.size(); ++idx) {
    const HotSpotInstance& inst = trace.instances[idx];
    const HotSpotInfo& info = trace.hot_spots[inst.hot_spot];
    const Cycles entered = now;
    entries.add();
    row.begin(inst.hot_spot, entered);
    now += inst.entry_overhead;
    backend.on_hot_spot_entry(trace, idx, now);
    for (SiId si : inst.executions) {
      const Cycles latency = backend.si_execution_latency(si, now);
      if (stats) stats->record_execution(si, now, latency);
      now += latency + info.per_execution_overhead;
      ++result.si_executions;
    }
    backend.on_hot_spot_exit(now);
    row.end(inst.hot_spot, now);
    result.hot_spot_cycles[inst.hot_spot] += now - entered;
  }
  result.total_cycles = now;
  result.atom_loads = backend.completed_loads();
  return result;
}

SimResult run_trace_batched(const WorkloadTrace& trace, ExecutionBackend& backend,
                            SimStats* stats) {
  SimResult result;
  result.hot_spot_cycles.assign(trace.hot_spots.size(), 0);
  const InstanceTraceRow row(trace, backend);
  MetricCounter& entries = hot_spot_entries_counter();
  Cycles now = 0;
  std::vector<LatencySegment> segments;
  std::vector<SiRun> local_runs;  // fallback when the trace has no run form
  for (std::size_t idx = 0; idx < trace.instances.size(); ++idx) {
    const HotSpotInstance& inst = trace.instances[idx];
    const Cycles entered = now;
    entries.add();
    row.begin(inst.hot_spot, entered);
    now = replay_instance(trace, idx, backend, stats, now, result.si_executions, segments,
                          local_runs);
    row.end(inst.hot_spot, now);
    result.hot_spot_cycles[inst.hot_spot] += now - entered;
  }
  result.total_cycles = now;
  result.atom_loads = backend.completed_loads();
  return result;
}

}  // namespace

Cycles replay_instance(const WorkloadTrace& trace, std::size_t instance,
                       ExecutionBackend& backend, SimStats* stats, Cycles now,
                       std::uint64_t& si_executions, std::vector<LatencySegment>& segments,
                       std::vector<SiRun>& runs_scratch) {
  const HotSpotInstance& inst = trace.instances[instance];
  const HotSpotInfo& info = trace.hot_spots[inst.hot_spot];
  now += inst.entry_overhead;
  backend.on_hot_spot_entry(trace, instance, now);
  const std::vector<SiRun>* runs = &inst.runs;
  if (runs->empty() && !inst.executions.empty()) {
    runs_scratch.clear();
    for (SiId si : inst.executions) {
      if (!runs_scratch.empty() && runs_scratch.back().si == si)
        ++runs_scratch.back().count;
      else
        runs_scratch.push_back(SiRun{si, 1});
    }
    runs = &runs_scratch;
  }
  if (!stats) {
    // No per-execution observation needed: let the backend fast-forward
    // the whole instance (port-quiet windows advance in pure arithmetic).
    now = backend.si_execution_span(std::span<const SiRun>(*runs), now,
                                    info.per_execution_overhead);
    si_executions += inst.executions.size();
    backend.on_hot_spot_exit(now);
    return now;
  }
  for (const SiRun& run : *runs) {
    segments.clear();
    backend.si_execution_run_latency(run.si, run.count, now, info.per_execution_overhead,
                                     segments);
    std::uint64_t segmented = 0;
    for (const LatencySegment& seg : segments) {
      const Cycles step = seg.latency + info.per_execution_overhead;
      stats->record_run(run.si, now, seg.count, step, seg.latency);
      now += seg.count * step;
      segmented += seg.count;
    }
    RISPP_CHECK_MSG(segmented == run.count,
                    "backend latency segments do not cover the run");
    si_executions += run.count;
  }
  backend.on_hot_spot_exit(now);
  return now;
}

SimResult run_trace(const WorkloadTrace& trace, ExecutionBackend& backend, SimStats* stats,
                    ReplayMode mode) {
  return mode == ReplayMode::kScalar ? run_trace_scalar(trace, backend, stats)
                                     : run_trace_batched(trace, backend, stats);
}

}  // namespace rispp
