#include "sim/executor.h"

#include "base/check.h"

namespace rispp {

SimResult run_trace(const WorkloadTrace& trace, ExecutionBackend& backend, SimStats* stats) {
  SimResult result;
  result.hot_spot_cycles.assign(trace.hot_spots.size(), 0);
  Cycles now = 0;
  for (std::size_t idx = 0; idx < trace.instances.size(); ++idx) {
    const HotSpotInstance& inst = trace.instances[idx];
    const HotSpotInfo& info = trace.hot_spots[inst.hot_spot];
    const Cycles entered = now;
    now += inst.entry_overhead;
    backend.on_hot_spot_entry(trace, idx, now);
    for (SiId si : inst.executions) {
      const Cycles latency = backend.si_execution_latency(si, now);
      if (stats) stats->record_execution(si, now, latency);
      now += latency + info.per_execution_overhead;
      ++result.si_executions;
    }
    backend.on_hot_spot_exit(now);
    result.hot_spot_cycles[inst.hot_spot] += now - entered;
  }
  result.total_cycles = now;
  result.atom_loads = backend.completed_loads();
  return result;
}

}  // namespace rispp
