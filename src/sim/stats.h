// Simulation statistics: totals plus the per-100K-cycle buckets the paper's
// Figures 2 and 8 plot (bars = SI executions per 100K cycles, lines = SI
// latency over time).
#pragma once

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace rispp {

inline constexpr Cycles kBucketCycles = 100'000;

class SimStats {
 public:
  explicit SimStats(std::size_t si_count);

  /// One SI execution started at `now` and took `latency` cycles.
  void record_execution(SiId si, Cycles now, Cycles latency);

  /// Bulk form for the batched replay path: `count` executions of `si`, the
  /// first starting at `start`, consecutive starts `step` cycles apart, each
  /// taking `latency` cycles. Bit-exact with `count` record_execution calls
  /// but O(buckets touched) instead of O(count).
  void record_run(SiId si, Cycles start, std::uint64_t count, Cycles step, Cycles latency);

  std::uint64_t executions(SiId si) const { return total_executions_[si]; }
  std::uint64_t total_executions() const;

  /// Executions of `si` in bucket b (cycles [b*100K, (b+1)*100K)).
  std::uint64_t bucket_executions(SiId si, std::size_t bucket) const;
  std::size_t bucket_count() const { return bucket_exec_.size(); }

  /// Latency change points of `si`: (cycle, latency), recorded whenever an
  /// execution observed a different latency than the previous one.
  struct LatencyPoint {
    Cycles at;
    Cycles latency;
  };
  const std::vector<LatencyPoint>& latency_timeline(SiId si) const;

 private:
  std::vector<std::uint64_t> total_executions_;
  std::vector<std::vector<std::uint64_t>> bucket_exec_;  // [bucket][si]
  std::vector<std::vector<LatencyPoint>> latency_;       // [si]
};

/// Result of one simulated run.
struct SimResult {
  Cycles total_cycles = 0;
  std::uint64_t si_executions = 0;
  std::uint64_t atom_loads = 0;  // completed reconfigurations
  /// Cycles spent inside each hot spot (indexed by HotSpotId).
  std::vector<Cycles> hot_spot_cycles;
};

}  // namespace rispp
