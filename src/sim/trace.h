// Workload traces: what the processor executes, independent of *how fast*.
//
// A trace is a sequence of hot-spot instances (e.g. ME, EE, LF of each
// frame), each carrying the exact order of SI executions the application
// issued plus the base-processor overhead around them. The functional H.264
// encoder records a trace once; the cycle-level executor then replays it
// under any Run-Time Manager / scheduler / AC-count configuration — the same
// record-replay methodology as the paper's simulation toolchain.
//
// Real SI streams are extremely repetitive (motion estimation issues tens of
// thousands of consecutive SADs), so each instance also carries a run-length
// encoded view of its executions. The batched replay path (sim/executor.h)
// consumes whole runs at once instead of one virtual call per execution.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "base/types.h"
#include "monitor/forecast.h"

namespace rispp {

/// A maximal run of consecutive identical SI executions.
struct SiRun {
  SiId si = 0;
  std::uint32_t count = 0;
};

struct HotSpotInstance {
  HotSpotInstance() = default;
  HotSpotInstance(HotSpotId hs, std::vector<SiId> execs, Cycles entry)
      : hot_spot(hs), executions(std::move(execs)), entry_overhead(entry) {}

  HotSpotId hot_spot = 0;
  /// SI executions in program order.
  std::vector<SiId> executions;
  /// Base-processor cycles spent entering the hot spot (control code, cache
  /// warmup) before the first SI.
  Cycles entry_overhead = 0;
  /// Run-length encoding of `executions` (consecutive identical SIs
  /// coalesced). Empty until WorkloadTrace::build_runs(); the batched
  /// executor falls back to an on-the-fly encoding when empty.
  std::vector<SiRun> runs;
};

struct HotSpotInfo {
  std::string name;
  /// SIs this hot spot uses (input to Molecule selection).
  std::vector<SiId> sis;
  /// Base-processor cycles of glue code around each SI execution.
  Cycles per_execution_overhead = 0;
};

struct WorkloadTrace {
  std::vector<HotSpotInfo> hot_spots;
  std::vector<HotSpotInstance> instances;

  std::size_t total_si_executions() const;
  /// Executions of one SI across the whole trace.
  std::uint64_t executions_of(SiId si) const;

  /// Base-processor cycles the replay spends outside SI latencies: every
  /// instance's entry overhead plus the per-execution glue overhead of its
  /// hot spot. total_cycles of any replay is exactly this plus the summed SI
  /// latencies, so `overhead_cycles() + Σ execs·floor_latency` is a sound
  /// lower bound on any backend's total — the DSE early-abandon bound.
  Cycles overhead_cycles() const;

  /// Builds the per-instance run forms and caches per-SI execution totals so
  /// total_si_executions()/executions_of() stop rescanning instances.
  /// Idempotent; re-call after mutating `instances`. Sweeps share one const
  /// trace across threads, so build the runs once before fanning out —
  /// load() and the workload generators already do.
  void build_runs();
  bool runs_built() const { return runs_built_; }

  /// Compact binary serialization (cache for expensive workload generation).
  /// Format v2 stores each instance's run form next to its executions, so
  /// load() validates and adopts the runs instead of rebuilding them; a v1
  /// file (pre-runs magic) is rejected with a clear regenerate message.
  void save(std::ostream& os) const;
  static WorkloadTrace load(std::istream& is);

 private:
  std::vector<std::uint64_t> executions_per_si_;  // cached totals, by SiId
  std::uint64_t total_executions_ = 0;
  bool runs_built_ = false;
};

/// Directory recorded-trace cache files live in: $RISPP_TRACE_DIR, or the
/// system temp directory when unset. Shared by the bench harness and the
/// fleet's TraceRepository so one warm cache serves both.
std::filesystem::path trace_cache_dir();

/// Atomically persists `trace` at `path`: writes a pid-and-counter-unique
/// temp file and renames it into place, so a concurrent reader never sees a
/// partial trace. Best-effort — unwritable paths are silently skipped (the
/// cache is an optimization, never a correctness dependency).
void save_trace_file(const WorkloadTrace& trace, const std::filesystem::path& path);

/// Loads the trace cached at `path`; nullopt when the file is missing or
/// fails load()'s validation (corrupt / stale format — regenerate).
std::optional<WorkloadTrace> try_load_trace_file(const std::filesystem::path& path);

}  // namespace rispp
