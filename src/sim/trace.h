// Workload traces: what the processor executes, independent of *how fast*.
//
// A trace is a sequence of hot-spot instances (e.g. ME, EE, LF of each
// frame), each carrying the exact order of SI executions the application
// issued plus the base-processor overhead around them. The functional H.264
// encoder records a trace once; the cycle-level executor then replays it
// under any Run-Time Manager / scheduler / AC-count configuration — the same
// record-replay methodology as the paper's simulation toolchain.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/types.h"
#include "monitor/forecast.h"

namespace rispp {

struct HotSpotInstance {
  HotSpotId hot_spot = 0;
  /// SI executions in program order.
  std::vector<SiId> executions;
  /// Base-processor cycles spent entering the hot spot (control code, cache
  /// warmup) before the first SI.
  Cycles entry_overhead = 0;
};

struct HotSpotInfo {
  std::string name;
  /// SIs this hot spot uses (input to Molecule selection).
  std::vector<SiId> sis;
  /// Base-processor cycles of glue code around each SI execution.
  Cycles per_execution_overhead = 0;
};

struct WorkloadTrace {
  std::vector<HotSpotInfo> hot_spots;
  std::vector<HotSpotInstance> instances;

  std::size_t total_si_executions() const;
  /// Executions of one SI across the whole trace.
  std::uint64_t executions_of(SiId si) const;

  /// Compact binary serialization (cache for expensive workload generation).
  void save(std::ostream& os) const;
  static WorkloadTrace load(std::istream& is);
};

}  // namespace rispp
