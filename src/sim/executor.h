// The cycle-level trace executor.
//
// The executor owns simulated time. It replays a WorkloadTrace against an
// ExecutionBackend — the RISPP Run-Time Manager or one of the baselines —
// asking the backend for the latency of every SI execution and advancing the
// clock by that latency plus the base-processor overhead the trace recorded.
// Reconfiguration happens inside the backend, concurrent with execution, as
// in the real platform (the port works while the pipeline executes).
//
// Two replay modes produce bit-exact identical results:
//  - kScalar: one si_execution_latency() call per execution (the reference).
//  - kBatched: one si_execution_run_latency() call per run of consecutive
//    identical executions. A backend's SI latency only changes when an atom
//    load completes on the reconfiguration port, so between port-completion
//    events a run of N executions advances in O(1) instead of O(N).
//
// replay_instance never mutates the trace and touches only its backend's
// state — the contract the multi-tenant co-simulation's event-horizon
// fast-forward (rtm/tenant_sim.cpp, DESIGN §9.1) builds on: whole instances
// of one tenant fast-forward through this body while the shared fabric is
// provably quiet for every other tenant.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "base/types.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace rispp {

/// A maximal stretch of executions within one run that all observed the same
/// latency (the latency can only change at reconfiguration-port events).
struct LatencySegment {
  std::uint64_t count = 0;
  Cycles latency = 0;
};

/// Appends `count` executions of `latency` to `segments`, coalescing with the
/// last segment when the latency is unchanged.
inline void append_latency_segment(std::vector<LatencySegment>& segments,
                                   std::uint64_t count, Cycles latency) {
  if (count == 0) return;
  if (!segments.empty() && segments.back().latency == latency)
    segments.back().count += count;
  else
    segments.push_back(LatencySegment{count, latency});
}

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;
  virtual std::string_view name() const = 0;

  /// A hot-spot instance begins (the backend typically re-selects molecules
  /// and reprograms the load queue here). `instance` indexes
  /// trace.instances; the hot spot id is trace.instances[instance].hot_spot.
  virtual void on_hot_spot_entry(const WorkloadTrace& trace, std::size_t instance,
                                 Cycles now) = 0;

  /// The hot-spot instance ended (fold monitoring counters etc.).
  virtual void on_hot_spot_exit(Cycles now) = 0;

  /// Latency of executing `si` starting at `now`. The backend must first
  /// advance its internal reconfiguration state to `now`.
  virtual Cycles si_execution_latency(SiId si, Cycles now) = 0;

  /// Batched form: `count` back-to-back executions of `si`, the first
  /// starting at `now`, consecutive starts spaced by the observed latency
  /// plus `per_execution_overhead`. Appends the observed latency segments to
  /// `segments` (their counts must sum to `count`) and returns the summed
  /// latency (overheads excluded). Must be bit-exact with `count` scalar
  /// calls. The default loops the scalar path; backends whose latency only
  /// changes at reconfiguration-port events override it to fast-forward
  /// whole runs in O(port events).
  virtual Cycles si_execution_run_latency(SiId si, std::uint64_t count, Cycles now,
                                          Cycles per_execution_overhead,
                                          std::vector<LatencySegment>& segments);

  /// Whole-instance form for stats-less replay: executes every run of a
  /// hot-spot instance back to back, the first execution starting at `now`,
  /// and returns the cycle after the last execution's overhead. Must be
  /// bit-exact with per-run replay. The default loops
  /// si_execution_run_latency; backends override it to replay entire
  /// port-quiet windows (during which *every* SI's latency is fixed) with
  /// pure arithmetic, amortizing one virtual call over a whole instance.
  virtual Cycles si_execution_span(std::span<const SiRun> runs, Cycles now,
                                   Cycles per_execution_overhead);

  /// Completed atom loads so far (0 for baselines without reconfiguration).
  virtual std::uint64_t completed_loads() const { return 0; }
};

enum class ReplayMode {
  kScalar,   // one backend call per SI execution (reference path)
  kBatched,  // one backend call per run of identical SI executions
};

/// Replays one hot-spot instance in batched form — the shared per-instance
/// body of run_trace(kBatched), the fleet session loop and the multi-tenant
/// co-simulation, kept in one place so every driver is bit-exact with every
/// other: entry overhead, on_hot_spot_entry, the per-run stats path (latency
/// segments recorded into `stats`) or the stats-less whole-instance span
/// path, then on_hot_spot_exit. `now` is the cycle the instance is entered;
/// returns the cycle after the last execution. `si_executions` accumulates
/// the executed SI count; `segments` and `runs_scratch` are caller-owned
/// scratch so replay loops stay allocation-free across instances.
Cycles replay_instance(const WorkloadTrace& trace, std::size_t instance,
                       ExecutionBackend& backend, SimStats* stats, Cycles now,
                       std::uint64_t& si_executions, std::vector<LatencySegment>& segments,
                       std::vector<SiRun>& runs_scratch);

/// Replays `trace` against `backend`. `stats` is optional. Both modes yield
/// bit-exact identical SimResult and SimStats (tests/replay_equivalence_test
/// asserts this across every backend).
SimResult run_trace(const WorkloadTrace& trace, ExecutionBackend& backend,
                    SimStats* stats = nullptr, ReplayMode mode = ReplayMode::kBatched);

}  // namespace rispp
