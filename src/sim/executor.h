// The cycle-level trace executor.
//
// The executor owns simulated time. It replays a WorkloadTrace against an
// ExecutionBackend — the RISPP Run-Time Manager or one of the baselines —
// asking the backend for the latency of every SI execution and advancing the
// clock by that latency plus the base-processor overhead the trace recorded.
// Reconfiguration happens inside the backend, concurrent with execution, as
// in the real platform (the port works while the pipeline executes).
#pragma once

#include <span>
#include <string_view>

#include "base/types.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace rispp {

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;
  virtual std::string_view name() const = 0;

  /// A hot-spot instance begins (the backend typically re-selects molecules
  /// and reprograms the load queue here). `instance` indexes
  /// trace.instances; the hot spot id is trace.instances[instance].hot_spot.
  virtual void on_hot_spot_entry(const WorkloadTrace& trace, std::size_t instance,
                                 Cycles now) = 0;

  /// The hot-spot instance ended (fold monitoring counters etc.).
  virtual void on_hot_spot_exit(Cycles now) = 0;

  /// Latency of executing `si` starting at `now`. The backend must first
  /// advance its internal reconfiguration state to `now`.
  virtual Cycles si_execution_latency(SiId si, Cycles now) = 0;

  /// Completed atom loads so far (0 for baselines without reconfiguration).
  virtual std::uint64_t completed_loads() const { return 0; }
};

/// Replays `trace` against `backend`. `stats` is optional.
SimResult run_trace(const WorkloadTrace& trace, ExecutionBackend& backend,
                    SimStats* stats = nullptr);

}  // namespace rispp
