#include "sim/stats.h"

#include <numeric>

#include "base/check.h"

namespace rispp {

SimStats::SimStats(std::size_t si_count)
    : total_executions_(si_count, 0), latency_(si_count) {}

void SimStats::record_execution(SiId si, Cycles now, Cycles latency) {
  RISPP_CHECK(si < total_executions_.size());
  ++total_executions_[si];
  const std::size_t bucket = static_cast<std::size_t>(now / kBucketCycles);
  if (bucket >= bucket_exec_.size())
    bucket_exec_.resize(bucket + 1, std::vector<std::uint64_t>(total_executions_.size(), 0));
  ++bucket_exec_[bucket][si];
  auto& tl = latency_[si];
  if (tl.empty() || tl.back().latency != latency) tl.push_back({now, latency});
}

void SimStats::record_run(SiId si, Cycles start, std::uint64_t count, Cycles step,
                          Cycles latency) {
  if (count == 0) return;
  RISPP_CHECK(si < total_executions_.size());
  total_executions_[si] += count;
  auto& tl = latency_[si];
  if (tl.empty() || tl.back().latency != latency) tl.push_back({start, latency});

  const Cycles last = start + (count - 1) * step;
  const std::size_t last_bucket = static_cast<std::size_t>(last / kBucketCycles);
  if (last_bucket >= bucket_exec_.size())
    bucket_exec_.resize(last_bucket + 1,
                        std::vector<std::uint64_t>(total_executions_.size(), 0));
  if (step == 0) {
    bucket_exec_[static_cast<std::size_t>(start / kBucketCycles)][si] += count;
    return;
  }
  // Executions j=0..count-1 start at start + j*step; bucket b holds those
  // with start_j < (b+1)*kBucketCycles not yet attributed to earlier buckets.
  std::uint64_t attributed = 0;
  for (std::size_t b = static_cast<std::size_t>(start / kBucketCycles);
       attributed < count; ++b) {
    const Cycles bucket_end = static_cast<Cycles>(b + 1) * kBucketCycles;
    const std::uint64_t up_to =
        bucket_end > start
            ? std::min<std::uint64_t>(count, (bucket_end - start + step - 1) / step)
            : 0;
    if (up_to > attributed) {
      bucket_exec_[b][si] += up_to - attributed;
      attributed = up_to;
    }
  }
}

std::uint64_t SimStats::total_executions() const {
  return std::accumulate(total_executions_.begin(), total_executions_.end(),
                         std::uint64_t{0});
}

std::uint64_t SimStats::bucket_executions(SiId si, std::size_t bucket) const {
  if (bucket >= bucket_exec_.size()) return 0;
  RISPP_CHECK(si < total_executions_.size());
  return bucket_exec_[bucket][si];
}

const std::vector<SimStats::LatencyPoint>& SimStats::latency_timeline(SiId si) const {
  RISPP_CHECK(si < latency_.size());
  return latency_[si];
}

}  // namespace rispp
