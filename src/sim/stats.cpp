#include "sim/stats.h"

#include <numeric>

#include "base/check.h"

namespace rispp {

SimStats::SimStats(std::size_t si_count)
    : total_executions_(si_count, 0), latency_(si_count) {}

void SimStats::record_execution(SiId si, Cycles now, Cycles latency) {
  RISPP_CHECK(si < total_executions_.size());
  ++total_executions_[si];
  const std::size_t bucket = static_cast<std::size_t>(now / kBucketCycles);
  if (bucket >= bucket_exec_.size())
    bucket_exec_.resize(bucket + 1, std::vector<std::uint64_t>(total_executions_.size(), 0));
  ++bucket_exec_[bucket][si];
  auto& tl = latency_[si];
  if (tl.empty() || tl.back().latency != latency) tl.push_back({now, latency});
}

std::uint64_t SimStats::total_executions() const {
  return std::accumulate(total_executions_.begin(), total_executions_.end(),
                         std::uint64_t{0});
}

std::uint64_t SimStats::bucket_executions(SiId si, std::size_t bucket) const {
  if (bucket >= bucket_exec_.size()) return 0;
  RISPP_CHECK(si < total_executions_.size());
  return bucket_exec_[bucket][si];
}

const std::vector<SimStats::LatencyPoint>& SimStats::latency_timeline(SiId si) const {
  RISPP_CHECK(si < latency_.size());
  return latency_[si];
}

}  // namespace rispp
