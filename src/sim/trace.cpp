#include "sim/trace.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <system_error>

#include "base/check.h"

namespace rispp {
namespace {

// Format v1 ("RTRC") serialized executions only and rebuilt the run form on
// every load. v2 appends each instance's RLE runs so warm loads skip
// build_runs(); the magic itself changed so a v1 file can never be misparsed
// as v2 (a version field after the old magic could collide with v1's
// hot-spot count).
constexpr std::uint32_t kMagicV1 = 0x52545243;  // "RTRC"
constexpr std::uint32_t kMagic = 0x32545243;    // v2: serialized runs

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  RISPP_CHECK_MSG(is.good(), "truncated trace stream");
  return v;
}

void put_string(std::ostream& os, const std::string& s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is) {
  const auto n = get<std::uint32_t>(is);
  std::string s(n, '\0');
  is.read(s.data(), n);
  RISPP_CHECK(is.good());
  return s;
}

}  // namespace

std::size_t WorkloadTrace::total_si_executions() const {
  if (runs_built_) return static_cast<std::size_t>(total_executions_);
  std::size_t n = 0;
  for (const auto& inst : instances) n += inst.executions.size();
  return n;
}

Cycles WorkloadTrace::overhead_cycles() const {
  Cycles total = 0;
  for (const auto& inst : instances)
    total += inst.entry_overhead +
             hot_spots[inst.hot_spot].per_execution_overhead * inst.executions.size();
  return total;
}

std::uint64_t WorkloadTrace::executions_of(SiId si) const {
  if (runs_built_) return si < executions_per_si_.size() ? executions_per_si_[si] : 0;
  std::uint64_t n = 0;
  for (const auto& inst : instances)
    for (SiId s : inst.executions)
      if (s == si) ++n;
  return n;
}

void WorkloadTrace::build_runs() {
  total_executions_ = 0;
  executions_per_si_.clear();
  for (auto& inst : instances) {
    inst.runs.clear();
    for (SiId si : inst.executions) {
      if (!inst.runs.empty() && inst.runs.back().si == si)
        ++inst.runs.back().count;
      else
        inst.runs.push_back(SiRun{si, 1});
      if (si >= executions_per_si_.size()) executions_per_si_.resize(si + 1, 0);
      ++executions_per_si_[si];
    }
    total_executions_ += inst.executions.size();
  }
  runs_built_ = true;
}

void WorkloadTrace::save(std::ostream& os) const {
  put(os, kMagic);
  put<std::uint32_t>(os, static_cast<std::uint32_t>(hot_spots.size()));
  for (const auto& hs : hot_spots) {
    put_string(os, hs.name);
    put<std::uint32_t>(os, static_cast<std::uint32_t>(hs.sis.size()));
    for (SiId si : hs.sis) put(os, si);
    put(os, hs.per_execution_overhead);
  }
  put<std::uint64_t>(os, instances.size());
  for (const auto& inst : instances) {
    put(os, inst.hot_spot);
    put(os, inst.entry_overhead);
    put<std::uint64_t>(os, inst.executions.size());
    os.write(reinterpret_cast<const char*>(inst.executions.data()),
             static_cast<std::streamsize>(inst.executions.size() * sizeof(SiId)));
    // The instance's run form; encoded on the fly when build_runs() hasn't
    // been called, so every v2 file carries runs.
    std::vector<SiRun> local;
    const std::vector<SiRun>* runs = &inst.runs;
    if (runs->empty() && !inst.executions.empty()) {
      for (SiId si : inst.executions) {
        if (!local.empty() && local.back().si == si)
          ++local.back().count;
        else
          local.push_back(SiRun{si, 1});
      }
      runs = &local;
    }
    put<std::uint64_t>(os, runs->size());
    for (const SiRun& run : *runs) {
      put(os, run.si);
      put(os, run.count);
    }
  }
}

WorkloadTrace WorkloadTrace::load(std::istream& is) {
  const auto magic = get<std::uint32_t>(is);
  RISPP_CHECK_MSG(magic != kMagicV1,
                  "trace format v1 (runs not serialized) — delete the file and regenerate");
  RISPP_CHECK_MSG(magic == kMagic, "not a RISPP trace");
  WorkloadTrace trace;
  const auto hs_count = get<std::uint32_t>(is);
  trace.hot_spots.resize(hs_count);
  for (auto& hs : trace.hot_spots) {
    hs.name = get_string(is);
    const auto si_count = get<std::uint32_t>(is);
    hs.sis.resize(si_count);
    for (auto& si : hs.sis) si = get<SiId>(is);
    hs.per_execution_overhead = get<Cycles>(is);
  }
  const auto inst_count = get<std::uint64_t>(is);
  trace.instances.resize(inst_count);
  for (auto& inst : trace.instances) {
    inst.hot_spot = get<HotSpotId>(is);
    RISPP_CHECK(inst.hot_spot < trace.hot_spots.size());
    inst.entry_overhead = get<Cycles>(is);
    const auto n = get<std::uint64_t>(is);
    inst.executions.resize(n);
    is.read(reinterpret_cast<char*>(inst.executions.data()),
            static_cast<std::streamsize>(n * sizeof(SiId)));
    RISPP_CHECK(is.good());
    const auto run_count = get<std::uint64_t>(is);
    inst.runs.resize(run_count);
    std::uint64_t run_total = 0;
    for (auto& run : inst.runs) {
      run.si = get<SiId>(is);
      run.count = get<std::uint32_t>(is);
      run_total += run.count;
      // Totals come from the runs, so the rebuild scan is skipped entirely.
      if (run.si >= trace.executions_per_si_.size())
        trace.executions_per_si_.resize(run.si + 1, 0);
      trace.executions_per_si_[run.si] += run.count;
    }
    RISPP_CHECK_MSG(run_total == n, "trace runs inconsistent with execution count");
    trace.total_executions_ += n;
  }
  trace.runs_built_ = true;
  return trace;
}

std::filesystem::path trace_cache_dir() {
  if (const char* env = std::getenv("RISPP_TRACE_DIR"); env != nullptr && *env != '\0')
    return env;
  return std::filesystem::temp_directory_path();
}

void save_trace_file(const WorkloadTrace& trace, const std::filesystem::path& path) {
  // The atomic counter keeps two writers constructed concurrently in one
  // process (fleet devices, in-process bench drivers) from clobbering each
  // other's temp file; distinct processes are separated by the pid.
  static std::atomic<unsigned> counter{0};
  const std::filesystem::path tmp = path.string() + "." + std::to_string(::getpid()) +
                                    "." + std::to_string(counter.fetch_add(1)) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out.good()) return;
    trace.save(out);
    if (!out.good()) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

std::optional<WorkloadTrace> try_load_trace_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  try {
    return WorkloadTrace::load(in);
  } catch (const std::exception&) {
    return std::nullopt;  // corrupt or stale-format cache: regenerate
  }
}

}  // namespace rispp
