// rispp_bench — run the full report suite concurrently.
//
//   rispp_bench                         # discover build/bench/*, all cores
//   rispp_bench --jobs 4 --frames 8     # quick pass, 4 reports at a time
//   rispp_bench --filter 'fig*'         # only the figure reports
//   rispp_bench --baseline ci/bench_baseline.json   # perf-regression gate
//
// Each report's stdout+stderr goes to <out>/logs/<name>.log (byte-identical
// to a sequential run — children never share a stream); per-report
// BENCH_<name>.json records are folded into <out>/BENCH_SUITE.json. With
// --baseline the driver exits non-zero when any report got >20 % slower
// (wall-clock or cells/sec) than the baseline suite.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "base/env.h"
#include "base/parallel.h"
#include "bench/common.h"
#include "bench/driver.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] [report-binary...]\n"
               "  --bench-dir <dir>   report discovery dir (default: <exe>/../bench)\n"
               "  --filter <glob>     only reports whose name matches (* and ?)\n"
               "  --jobs <n>          concurrent reports (default: thread count)\n"
               "  --frames <n>        RISPP_FRAMES for every report (default: 140)\n"
               "  --out <dir>         logs + BENCH_SUITE.json (default: bench-out)\n"
               "  --baseline <path>   BENCH_SUITE.json or dir of BENCH_*.json;\n"
               "                      exit non-zero on >threshold slowdown\n"
               "  --threshold <pct>   regression budget in percent (default: 20)\n"
               "  --refresh-baseline <path>\n"
               "                      after a fully green run, rewrite <path>\n"
               "                      (e.g. ci/bench_baseline.json) from this\n"
               "                      run's BENCH_SUITE.json\n"
               "  --stats-diff <path> BENCH_SUITE.json to diff this run's\n"
               "                      folded metrics against (informational;\n"
               "                      never gates)\n"
               "  --trace-dir <dir>   run every report with RISPP_TRACE set:\n"
               "                      one <dir>/<name>.trace.json per report\n"
               "                      (Chrome about://tracing / Perfetto format)\n"
               "  --no-warm           skip the trace-cache pre-warm\n"
               "  --list              print the discovered reports and exit\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rispp;
  namespace fs = std::filesystem;

  fs::path bench_dir;
  fs::path out_dir = "bench-out";
  fs::path baseline_path;
  fs::path refresh_path;
  fs::path stats_diff_path;
  fs::path trace_dir;
  std::string filter;
  std::vector<fs::path> explicit_binaries;
  unsigned jobs = 0;
  double threshold = 0.20;
  bool warm = true, list_only = false;

  const auto next_arg = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench-dir") bench_dir = next_arg(i, "--bench-dir");
    else if (arg == "--filter") filter = next_arg(i, "--filter");
    else if (arg == "--jobs") {
      const auto n = parse_int_strict(next_arg(i, "--jobs"), 1, 4096);
      if (!n) { std::fprintf(stderr, "--jobs: not a positive integer\n"); return 2; }
      jobs = static_cast<unsigned>(*n);
    } else if (arg == "--frames") {
      const auto n = parse_int_strict(next_arg(i, "--frames"), 1, 1'000'000);
      if (!n) { std::fprintf(stderr, "--frames: not a positive integer\n"); return 2; }
      // Children inherit the environment; bench_frames() in this process
      // (pre-warm, suite record) reads the same value.
      ::setenv("RISPP_FRAMES", std::to_string(*n).c_str(), 1);
    } else if (arg == "--out") out_dir = next_arg(i, "--out");
    else if (arg == "--baseline") baseline_path = next_arg(i, "--baseline");
    else if (arg == "--threshold") {
      const auto n = parse_int_strict(next_arg(i, "--threshold"), 1, 1000);
      if (!n) { std::fprintf(stderr, "--threshold: not a percentage\n"); return 2; }
      threshold = static_cast<double>(*n) / 100.0;
    } else if (arg == "--refresh-baseline") refresh_path = next_arg(i, "--refresh-baseline");
    else if (arg == "--stats-diff") stats_diff_path = next_arg(i, "--stats-diff");
    else if (arg == "--trace-dir") trace_dir = next_arg(i, "--trace-dir");
    else if (arg == "--no-warm") warm = false;
    else if (arg == "--list") list_only = true;
    else if (arg == "--help" || arg == "-h") { usage(argv[0]); return 0; }
    else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else explicit_binaries.emplace_back(arg);
  }

  std::vector<fs::path> binaries = explicit_binaries;
  if (binaries.empty()) {
    if (bench_dir.empty()) {
      // The build tree keeps tools/ and bench/ side by side.
      std::error_code ec;
      const fs::path self = fs::canonical(fs::path(argv[0]), ec);
      bench_dir = (ec ? fs::path(argv[0]) : self).parent_path().parent_path() / "bench";
    }
    binaries = bench::discover_reports(bench_dir);
    if (binaries.empty()) {
      std::fprintf(stderr, "no report binaries found in %s\n", bench_dir.string().c_str());
      return 2;
    }
  }
  if (!filter.empty())
    std::erase_if(binaries, [&](const fs::path& p) {
      return !bench::glob_match(filter, p.filename().string());
    });
  if (list_only) {
    for (const auto& b : binaries) std::printf("%s\n", b.filename().string().c_str());
    return 0;
  }
  if (binaries.empty()) {
    std::fprintf(stderr, "filter matched no reports\n");
    return 2;
  }

  const unsigned total_threads = parallel_thread_count();
  bench::DriverOptions options;
  options.jobs = jobs > 0 ? jobs : total_threads;
  options.jobs = std::min<unsigned>(options.jobs, binaries.size());
  // Divide the host's threads among concurrent children: jobs * per-child
  // never oversubscribes what RISPP_THREADS / the core count granted. The
  // per-child share is recomputed at each launch (compute_child_threads), so
  // stragglers launched late pick up finished reports' threads.
  options.total_threads = total_threads;
  options.threads_per_child = std::max(1u, total_threads / options.jobs);
  options.out_dir = out_dir;
  options.trace_dir = trace_dir;

  const int frames = bench::bench_frames();
  std::printf("rispp_bench: %zu reports, %u at a time, %u thread(s) each, %d frames\n",
              binaries.size(), options.jobs, options.threads_per_child, frames);
  if (warm) {
    // One shared cache fill instead of every child racing to encode — both
    // the classic bench workload and the fleet benches' mixed contents.
    bench::warm_trace_cache();
    bench::warm_fleet_trace_cache();
  }

  const auto results = bench::run_reports(binaries, options, std::cout);
  std::printf("\n%s\n", bench::render_summary_table(results).c_str());
  bench::write_suite(results, frames, options, out_dir / "BENCH_SUITE.json");
  std::printf("suite record: %s\n", (out_dir / "BENCH_SUITE.json").string().c_str());

  int exit_code = 0;
  for (const auto& r : results)
    if (r.exit_code != 0) {
      std::fprintf(stderr, "%s failed (exit %d), log: %s\n", r.name.c_str(), r.exit_code,
                   r.log.string().c_str());
      exit_code = 1;
    }

  if (!baseline_path.empty()) {
    const auto baseline = bench::load_baseline(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "baseline %s is empty or unreadable\n",
                   baseline_path.string().c_str());
      return 2;
    }
    const auto gate = bench::compare_against_baseline(results, baseline, threshold);
    std::printf("\nregression gate vs %s (budget %.0f%%):\n%s\n",
                baseline_path.string().c_str(), threshold * 100.0,
                bench::render_regression_table(gate).c_str());
    for (const auto& name : gate.missing)
      std::printf("note: baselined report %s did not run\n", name.c_str());
    if (gate.failed) {
      std::fprintf(stderr, "perf regression gate FAILED\n");
      exit_code = 1;
    }
  }

  if (!stats_diff_path.empty()) {
    // Informational metrics movement vs a prior suite — never gates: metric
    // values (cycle counts, histogram quantiles) move legitimately with
    // workload changes, unlike the wall-clock/cells-per-sec budget above.
    const auto metrics_baseline = bench::load_baseline_metrics(stats_diff_path);
    if (metrics_baseline.empty()) {
      std::fprintf(stderr, "--stats-diff: %s has no per-report metrics\n",
                   stats_diff_path.string().c_str());
    } else {
      std::printf("\nmetric movements vs %s (top 5 per report):\n%s\n",
                  stats_diff_path.string().c_str(),
                  bench::render_metrics_diff(results, metrics_baseline, 5).c_str());
    }
  }

  if (!refresh_path.empty()) {
    // Baseline refresh: only a fully green run may become the new reference
    // (a failed or regressed run would bake the slowdown into the budget).
    if (exit_code != 0) {
      std::fprintf(stderr, "--refresh-baseline: run not green, leaving %s untouched\n",
                   refresh_path.string().c_str());
    } else {
      std::error_code ec;
      if (!refresh_path.parent_path().empty())
        fs::create_directories(refresh_path.parent_path(), ec);
      fs::copy_file(out_dir / "BENCH_SUITE.json", refresh_path,
                    fs::copy_options::overwrite_existing, ec);
      if (ec) {
        std::fprintf(stderr, "--refresh-baseline: copy to %s failed: %s\n",
                     refresh_path.string().c_str(), ec.message().c_str());
        exit_code = 2;
      } else {
        std::printf("baseline refreshed: %s\n", refresh_path.string().c_str());
      }
    }
  }
  return exit_code;
}
