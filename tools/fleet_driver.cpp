// rispp_fleet — the fleet-scale simulation service driver.
//
//   rispp_fleet [--sessions N] [--mix h264=4,jpeg=1] [--frames LO..HI]
//               [--schedulers HEF,SJF,...] [--acs LO..HI]
//               [--arrival all|uniform:<per_min>] [--block N] [--seed N]
//               [--stats] [--solo]
//
// Expands the session-mix spec deterministically (fleet/spec.h), replays
// every session through the batched fleet::SessionBatch core, and reports
// throughput (sessions/min), per-session completion-latency percentiles and
// shared-cache hit rates. RISPP_SESSIONS / RISPP_TENANTS override the
// defaults (flags beat the environment); garbage in either exits 2 naming
// the offender. RISPP_TRACE emits per-block fleet spans (track "fleet");
// RISPP_METRICS / RISPP_BENCH_JSON_DIR feed the BENCH_SUITE.json pipeline.
//
// --tenants N (N > 1) switches to the contended fleet: N consecutive
// sessions share one device's fabric through a FabricArbiter
// (--acs-per-tenant, --floor, --partition static|weighted), and the report
// shifts to simulated contention — aggregate speedup over software-only and
// per-tenant simulated-cycle percentiles (fleet/tenant_fleet.h). --cosim
// picks the per-device co-simulation: the event-horizon fast-forward
// (default, DESIGN §9.1) or the instance-stepped reference oracle —
// bit-identical results either way; --parallel-tenants additionally steps
// one device's tenants in parallel during quiescent epochs.
//
// --solo replays the same fleet one session at a time through the
// single-session sim::run_trace path and cross-checks bit-identical results
// — the equivalence contract, runnable from the command line.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/env.h"
#include "base/table.h"
#include "bench/common.h"
#include "fleet/session_batch.h"
#include "fleet/spec.h"
#include "fleet/tenant_fleet.h"
#include "sched/registry.h"
#include "sim/executor.h"

namespace {

using namespace rispp;

int usage() {
  std::fprintf(stderr,
               "usage: rispp_fleet [--sessions N] [--mix h264=4,jpeg=1]\n"
               "                   [--frames LO..HI] [--schedulers HEF,SJF,...]\n"
               "                   [--acs LO..HI] [--arrival all|uniform:<per_min>]\n"
               "                   [--block N] [--seed N] [--stats] [--solo]\n"
               "                   [--tenants N] [--acs-per-tenant N] [--floor N]\n"
               "                   [--partition static|weighted]\n"
               "                   [--cosim fast|reference] [--parallel-tenants]\n");
  return 2;
}

long int_flag_or_die(const char* label, const char* text, long min_value, long max_value) {
  const auto value = parse_int_strict(text, min_value, max_value);
  if (!value) {
    std::fprintf(stderr, "%s=%s is not an integer in [%ld, %ld]\n", label, text, min_value,
                 max_value);
    std::exit(kEnvParseExitCode);
  }
  return *value;
}

/// Replays session `s` alone through the single-session path and compares
/// against the batch, proving the fleet restructuring changed nothing.
bool check_solo(const fleet::SessionBatch& batch, std::size_t s) {
  const fleet::SessionSpec& spec = batch.spec(s);
  const fleet::TraceEntry& entry = fleet::TraceRepository::global().get(spec);
  const auto scheduler = make_scheduler(spec.scheduler);
  RtmConfig config;
  config.container_count = spec.container_count;
  config.scheduler = scheduler.get();
  config.forecast_mode = spec.forecast_mode;
  RunTimeManager rtm(&entry.set, entry.trace.hot_spots.size(), config);
  for (HotSpotId hs = 0; hs < entry.seeds.size(); ++hs)
    for (SiId si = 0; si < entry.seeds[hs].size(); ++si)
      if (entry.seeds[hs][si] != 0) rtm.seed_forecast(hs, si, entry.seeds[hs][si]);
  const SimResult solo = run_trace(entry.trace, rtm);
  const SimResult fleet_result = batch.result(s);
  if (solo.total_cycles == fleet_result.total_cycles &&
      solo.si_executions == fleet_result.si_executions &&
      solo.atom_loads == fleet_result.atom_loads &&
      solo.hot_spot_cycles == fleet_result.hot_spot_cycles)
    return true;
  std::fprintf(stderr,
               "session %zu diverged from solo replay: cycles %llu vs %llu, "
               "executions %llu vs %llu, loads %llu vs %llu\n",
               s, static_cast<unsigned long long>(fleet_result.total_cycles),
               static_cast<unsigned long long>(solo.total_cycles),
               static_cast<unsigned long long>(fleet_result.si_executions),
               static_cast<unsigned long long>(solo.si_executions),
               static_cast<unsigned long long>(fleet_result.atom_loads),
               static_cast<unsigned long long>(solo.atom_loads));
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  fleet::FleetSpec spec;
  fleet::apply_fleet_env(spec);
  fleet::FleetOptions options;
  bool solo_check = false;
  CosimMode cosim_mode = CosimMode::kFastForward;
  bool parallel_tenants = false;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const char* value = i + 1 < args.size() ? args[i + 1].c_str() : nullptr;
    if (arg == "--stats") {
      options.collect_stats = true;
    } else if (arg == "--solo") {
      solo_check = true;
    } else if (arg == "--parallel-tenants") {
      parallel_tenants = true;
    } else if (value == nullptr) {
      return usage();
    } else if (arg == "--sessions") {
      spec.sessions = static_cast<int>(int_flag_or_die("--sessions", value, 1, 10'000'000));
      ++i;
    } else if (arg == "--mix") {
      fleet::parse_mix_or_die("--mix", value, spec);
      ++i;
    } else if (arg == "--frames") {
      fleet::parse_range_or_die("--frames", value, 1, 10'000, spec.frames_min,
                                spec.frames_max);
      ++i;
    } else if (arg == "--schedulers") {
      spec.schedulers = fleet::parse_schedulers_or_die("--schedulers", value);
      ++i;
    } else if (arg == "--acs") {
      fleet::parse_range_or_die("--acs", value, 1, 1'000, spec.acs_min, spec.acs_max);
      ++i;
    } else if (arg == "--arrival") {
      spec.arrival_per_min = fleet::parse_arrival_or_die("--arrival", value);
      ++i;
    } else if (arg == "--block") {
      options.block_size =
          static_cast<unsigned>(int_flag_or_die("--block", value, 1, 1'000'000));
      ++i;
    } else if (arg == "--seed") {
      spec.seed = static_cast<std::uint64_t>(
          int_flag_or_die("--seed", value, 0, 1'000'000'000'000L));
      ++i;
    } else if (arg == "--tenants") {
      spec.tenants = static_cast<int>(int_flag_or_die(
          "--tenants", value, 1, static_cast<long>(FabricArbiter::kMaxTenants)));
      ++i;
    } else if (arg == "--acs-per-tenant") {
      spec.acs_per_tenant =
          static_cast<int>(int_flag_or_die("--acs-per-tenant", value, 1, 1'000));
      ++i;
    } else if (arg == "--floor") {
      spec.tenant_floor = static_cast<int>(int_flag_or_die("--floor", value, 1, 1'000));
      ++i;
    } else if (arg == "--partition") {
      spec.partition = fleet::parse_partition_or_die("--partition", value);
      ++i;
    } else if (arg == "--cosim") {
      const std::string mode = value;
      if (mode == "fast") {
        cosim_mode = CosimMode::kFastForward;
      } else if (mode == "reference") {
        cosim_mode = CosimMode::kReference;
      } else {
        std::fprintf(stderr,
                     "--cosim must be 'fast' or 'reference', got '%s'\n", value);
        return 2;
      }
      ++i;
    } else {
      return usage();
    }
  }

  const std::vector<fleet::SessionSpec> sessions = fleet::expand_fleet_spec(spec);

  if (spec.tenants > 1) {
    // Contended mode: sessions share devices; the classic batch (and its
    // wall-clock latency metrics) does not apply.
    fleet::ContendedOptions contended;
    contended.tenants_per_device = spec.tenants;
    contended.acs_per_tenant = spec.acs_per_tenant;
    contended.floor = spec.tenant_floor;
    contended.partition = spec.partition;
    contended.cosim = cosim_mode;
    contended.parallel_tenants = parallel_tenants;
    std::printf("contended fleet: %zu sessions, %d tenants/device, %d ACs/tenant\n",
                sessions.size(), spec.tenants, spec.acs_per_tenant);
    fleet::ContendedReport report;
    {
      bench::BenchPerfLog perf("fleet");
      perf.set_cells(sessions.size());
      report = fleet::run_contended_fleet(sessions, contended);
    }
    TextTable table({"metric", "value"});
    table.add("sessions", report.sessions);
    table.add("devices", report.devices);
    table.add("wall seconds", format_fixed(report.wall_seconds, 3));
    table.add("sessions/min", format_fixed(report.sessions_per_min, 0));
    table.add("aggregate speedup", format_fixed(report.aggregate_speedup, 3));
    table.add("sim cycles p50", report.sim_cycles_p50);
    table.add("sim cycles p99", report.sim_cycles_p99);
    table.add("port grants", report.grants);
    table.add("cross-tenant evictions", report.evictions);
    table.add("port wait cycles", report.port_wait_cycles);
    table.add("cycles checksum", report.cycles_checksum);
    std::fputs(table.render().c_str(), stdout);
    return 0;
  }

  fleet::SessionBatch batch(sessions, options);
  std::printf("fleet: %zu sessions, %zu cohorts, %zu blocks\n", batch.session_count(),
              batch.cohort_count(), batch.block_count());

  fleet::FleetReport report;
  {
    bench::BenchPerfLog perf("fleet");
    perf.set_cells(sessions.size());
    report = fleet::run_fleet(batch);
  }

  TextTable table({"metric", "value"});
  table.add("sessions", report.sessions);
  table.add("wall seconds", format_fixed(report.wall_seconds, 3));
  table.add("sessions/min", format_fixed(report.sessions_per_min, 0));
  table.add("latency p50 (ms)", format_fixed(report.latency_p50_ms, 2));
  table.add("latency p99 (ms)", format_fixed(report.latency_p99_ms, 2));
  table.add("decision cache hits", report.cache_hits);
  table.add("decision cache misses", report.cache_misses);
  table.add("cross-session hits", report.cross_session_hits);
  table.add("cross-session hit rate", format_fixed(report.cross_session_hit_rate, 3));
  table.add("cycles checksum", report.cycles_checksum);
  std::fputs(table.render().c_str(), stdout);

  if (solo_check) {
    std::size_t diverged = 0;
    for (std::size_t s = 0; s < batch.session_count(); ++s)
      if (!check_solo(batch, s)) ++diverged;
    if (diverged != 0) {
      std::fprintf(stderr, "FAIL: %zu of %zu sessions diverged from the solo path\n",
                   diverged, batch.session_count());
      return 1;
    }
    std::printf("solo cross-check: all %zu sessions bit-identical\n", batch.session_count());
  }
  return 0;
}
