// trace_check — validate a Chrome trace JSON written via RISPP_TRACE.
//
//   trace_check out.json                        # well-formedness only
//   trace_check --min-tracks 4 out.json         # plus shape requirements
//   trace_check --require-counter rtm.decision_cache.hits out.json
//   trace_check --metrics METRICS.json          # metrics-snapshot schema
//
// Exit 0 when the file parses, passes the well-formedness rules of
// validate_chrome_trace (matched B/E pairs, per-row monotonic timestamps,
// valid phases) and meets every requirement; 1 when a check fails; 2 on
// usage errors or an unreadable file. CI runs this against the traced fig7
// report before uploading the trace as an artifact.
//
// --metrics switches the subject: the file is validated against the metrics
// snapshot schema instead (validate_metrics_json — a registry snapshot or a
// flight-recorder ring; histogram summaries must be internally consistent,
// bucket arrays must sum to their count). Shape flags don't apply there.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "base/env.h"
#include "base/metrics.h"
#include "base/trace_event.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <trace.json>\n"
               "  --min-tracks <n>         require >= n distinct tracks (pids)\n"
               "  --min-events <n>         require >= n non-metadata events\n"
               "  --require-counter <name> require a 'C' sample of this counter\n"
               "                           (repeatable)\n"
               "  --metrics                validate a metrics snapshot / ring\n"
               "                           file instead of a Chrome trace\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rispp;

  std::string path;
  long min_tracks = 0;
  long min_events = 0;
  bool metrics_mode = false;
  std::vector<std::string> required_counters;

  const auto next_arg = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--min-tracks") {
      const auto n = parse_int_strict(next_arg(i, "--min-tracks"), 0, 1'000'000);
      if (!n) { std::fprintf(stderr, "--min-tracks: not an integer\n"); return 2; }
      min_tracks = *n;
    } else if (arg == "--min-events") {
      const auto n = parse_int_strict(next_arg(i, "--min-events"), 0, 1'000'000'000);
      if (!n) { std::fprintf(stderr, "--min-events: not an integer\n"); return 2; }
      min_events = *n;
    } else if (arg == "--require-counter") {
      required_counters.emplace_back(next_arg(i, "--require-counter"));
    } else if (arg == "--metrics") {
      metrics_mode = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "more than one trace file given\n");
      return 2;
    }
  }
  if (path.empty()) {
    usage(argv[0]);
    return 2;
  }

  if (metrics_mode &&
      (min_tracks > 0 || min_events > 0 || !required_counters.empty())) {
    std::fprintf(stderr, "--metrics does not combine with trace shape flags\n");
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", path.c_str());
    return 2;
  }
  if (metrics_mode) {
    if (const auto problem = validate_metrics_json(in)) {
      std::fprintf(stderr, "trace_check: %s: %s\n", path.c_str(), problem->c_str());
      return 1;
    }
    std::printf("trace_check: %s: metrics schema ok\n", path.c_str());
    return 0;
  }
  TraceValidation info;
  if (const auto problem = validate_chrome_trace(in, &info)) {
    std::fprintf(stderr, "trace_check: %s: %s\n", path.c_str(), problem->c_str());
    return 1;
  }

  int failures = 0;
  if (static_cast<long>(info.tracks) < min_tracks) {
    std::fprintf(stderr, "trace_check: %s: %zu track(s), need >= %ld\n", path.c_str(),
                 info.tracks, min_tracks);
    ++failures;
  }
  if (static_cast<long>(info.events) < min_events) {
    std::fprintf(stderr, "trace_check: %s: %zu event(s), need >= %ld\n", path.c_str(),
                 info.events, min_events);
    ++failures;
  }
  for (const std::string& name : required_counters) {
    if (!std::binary_search(info.counter_names.begin(), info.counter_names.end(), name)) {
      std::fprintf(stderr, "trace_check: %s: no counter sample named %s\n", path.c_str(),
                   name.c_str());
      ++failures;
    }
  }
  if (failures > 0) return 1;
  std::printf("trace_check: %s: ok (%zu events, %zu tracks, %zu counters)\n", path.c_str(),
              info.events, info.tracks, info.counter_names.size());
  return 0;
}
