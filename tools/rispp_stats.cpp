// rispp_stats — offline analysis over metrics snapshots.
//
//   rispp_stats run/METRICS.json                      # quantile table
//   rispp_stats --filter fleet. run/METRICS.json      # only fleet series
//   rispp_stats --q 0.5,0.99,0.999 run/METRICS.json   # custom quantiles
//   rispp_stats --slo 250000 --metric fleet.contended.session_cycles \
//               run/METRICS.json                      # per-tenant attainment
//   rispp_stats --diff old/METRICS.json run/METRICS.json   # movements
//
// Accepts a RISPP_METRICS snapshot, a flight-recorder ring (last window), or
// a rispp_bench BENCH_SUITE.json (per-report flat metrics). SLO attainment
// and off-grid quantiles need the snapshot's bucket arrays; ring windows and
// suite records carry summaries only, so those cells degrade to "n/a".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "base/env.h"
#include "base/stats.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <metrics.json>\n"
               "  --slo <value>     objective (metric units); prints per-series\n"
               "                    attainment; requires --metric\n"
               "  --metric <name>   histogram base name for --slo\n"
               "  --q <list>        comma-separated quantiles in (0,1)\n"
               "                    (default 0.5,0.9,0.99)\n"
               "  --filter <text>   only histograms whose name contains <text>\n"
               "  --diff <base>     largest movements from <base> to <metrics.json>\n"
               "  --top <n>         rows for --diff (default 10)\n",
               argv0);
}

/// Strict quantile-list parse; exits 2 naming the offending token.
std::vector<double> parse_quantiles(const char* text) {
  std::vector<double> out;
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    const double q = std::strtod(p, &end);
    if (end == p || q <= 0.0 || q >= 1.0) {
      std::fprintf(stderr, "--q: '%s' is not a quantile in (0,1)\n", p);
      std::exit(2);
    }
    out.push_back(q);
    p = end;
    if (*p == ',') ++p;
    else if (*p != '\0') {
      std::fprintf(stderr, "--q: unexpected '%c' in '%s'\n", *p, text);
      std::exit(2);
    }
  }
  if (out.empty()) {
    std::fprintf(stderr, "--q: empty quantile list\n");
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rispp;

  std::string input;
  std::string diff_base;
  std::string metric;
  std::string filter;
  std::vector<double> quantiles = {0.5, 0.9, 0.99};
  bool quantiles_overridden = false;
  long slo = -1;
  std::size_t top = 10;

  const auto next_arg = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--slo") {
      const auto n = parse_int_strict(next_arg(i, "--slo"), 0,
                                      std::numeric_limits<long>::max());
      if (!n) { std::fprintf(stderr, "--slo: not a non-negative integer\n"); return 2; }
      slo = *n;
    } else if (arg == "--metric") metric = next_arg(i, "--metric");
    else if (arg == "--q") {
      // First --q drops the default grid; repeats accumulate.
      const auto qs = parse_quantiles(next_arg(i, "--q"));
      if (!quantiles_overridden) { quantiles.clear(); quantiles_overridden = true; }
      quantiles.insert(quantiles.end(), qs.begin(), qs.end());
    }
    else if (arg == "--filter") filter = next_arg(i, "--filter");
    else if (arg == "--diff") diff_base = next_arg(i, "--diff");
    else if (arg == "--top") {
      const auto n = parse_int_strict(next_arg(i, "--top"), 1, 10'000);
      if (!n) { std::fprintf(stderr, "--top: not a positive integer\n"); return 2; }
      top = static_cast<std::size_t>(*n);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else if (input.empty()) {
      input = arg;
    } else {
      std::fprintf(stderr, "unexpected extra argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (input.empty()) {
    std::fprintf(stderr, "missing <metrics.json>\n");
    usage(argv[0]);
    return 2;
  }
  if (slo >= 0 && metric.empty()) {
    std::fprintf(stderr, "--slo requires --metric <histogram base name>\n");
    return 2;
  }
  if (slo < 0 && !metric.empty()) {
    std::fprintf(stderr, "--metric requires --slo <objective>\n");
    return 2;
  }

  stats::MetricsDocument doc;
  std::string error;
  if (!stats::load_metrics_document(input, doc, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  if (!diff_base.empty()) {
    stats::MetricsDocument base;
    if (!stats::load_metrics_document(diff_base, base, error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("metric movements %s -> %s (top %zu):\n%s", diff_base.c_str(),
                input.c_str(), top, stats::render_diff(base, doc, top).c_str());
    return 0;
  }

  if (slo >= 0) {
    const auto table =
        stats::render_slo_table(doc, metric, static_cast<std::uint64_t>(slo));
    if (!table) {
      std::fprintf(stderr, "no histogram series named %s in %s\n", metric.c_str(),
                   input.c_str());
      return 1;
    }
    std::printf("SLO attainment for %s (objective %ld):\n%s", metric.c_str(), slo,
                table->c_str());
    return 0;
  }

  if (doc.histograms.empty()) {
    std::fprintf(stderr, "%s holds no histogram series (suite records fold\n"
                 "histograms flat — point rispp_stats at a METRICS.json snapshot,\n"
                 "or use --diff to compare two documents)\n",
                 input.c_str());
    return 1;
  }
  std::printf("%s", stats::render_quantile_table(doc, quantiles, filter).c_str());
  return 0;
}
