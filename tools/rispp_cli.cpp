// rispp — command-line driver for the run-time system.
//
//   rispp describe <platform-file>
//       Parse a textual platform description and print the derived atom
//       table and molecule lists.
//
//   rispp schedule <platform-file> --si NAME[,NAME...] [--acs N] [--scheduler S]
//       Run Molecule selection and the SI Scheduler for one hot spot of the
//       given platform and print the atom loading sequence.
//
//   rispp h264 [--acs N] [--scheduler S|all] [--frames N] [--molen]
//       Run the paper's H.264 workload on the built-in platform and print
//       execution time.
//
//   rispp dse [--min N] [--max N] [--frames N]
//       Design-space exploration over the Atom Container budget on the
//       built-in H.264 platform: per budget, the best scheduler and the
//       speedup vs software — the area/performance trade-off a platform
//       designer reads off before fixing the AC count.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/molen.h"
#include "baselines/software_only.h"
#include "config/platform_parser.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "rtm/run_time_manager.h"
#include "sched/registry.h"
#include "sim/executor.h"

namespace {

using namespace rispp;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rispp describe <platform-file>\n"
               "  rispp schedule <platform-file> --si NAME[,NAME...] [--acs N] "
               "[--scheduler FSFR|ASF|SJF|HEF]\n"
               "  rispp h264 [--acs N] [--scheduler S|all] [--frames N] [--molen]\n"
               "  rispp dse [--min N] [--max N] [--frames N]\n");
  return 2;
}

std::optional<std::string> arg_value(std::vector<std::string>& args, const std::string& key) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == key) {
      std::string value = args[i + 1];
      args.erase(args.begin() + static_cast<long>(i), args.begin() + static_cast<long>(i) + 2);
      return value;
    }
  }
  return std::nullopt;
}

bool flag(std::vector<std::string>& args, const std::string& key) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == key) {
      args.erase(args.begin() + static_cast<long>(i));
      return true;
    }
  }
  return false;
}

SpecialInstructionSet load_platform(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw std::logic_error("cannot open platform file " + path);
  return config::parse_platform(in);
}

int cmd_describe(std::vector<std::string> args) {
  if (args.size() != 1) return usage();
  const auto set = load_platform(args[0]);
  std::printf("%s", config::describe_platform(set).c_str());
  return 0;
}

int cmd_schedule(std::vector<std::string> args) {
  const auto si_list = arg_value(args, "--si");
  const unsigned acs = std::stoul(arg_value(args, "--acs").value_or("10"));
  const std::string scheduler_name = arg_value(args, "--scheduler").value_or("HEF");
  if (args.size() != 1 || !si_list.has_value()) return usage();
  const auto set = load_platform(args[0]);

  SelectionRequest sel;
  sel.set = &set;
  sel.expected_executions.assign(set.si_count(), 0);
  std::stringstream names(*si_list);
  std::string name;
  while (std::getline(names, name, ',')) {
    const auto id = set.find(name);
    if (!id.has_value()) throw std::logic_error("unknown SI " + name);
    sel.hot_spot_sis.push_back(*id);
    sel.expected_executions[*id] = 1000;  // uniform expectation by default
  }
  sel.container_count = acs;
  const auto selection = select_molecules(sel);
  std::printf("selection under %u ACs (NA = %u):\n", acs,
              selection_atom_count(set, selection));
  for (const SiRef& s : selection)
    std::printf("  %-16s %s latency %llu (trap %llu)\n", set.si(s.si).name.c_str(),
                set.si(s.si).molecule(s.mol).atoms.to_string().c_str(),
                static_cast<unsigned long long>(set.latency(s)),
                static_cast<unsigned long long>(set.si(s.si).software_latency));

  ScheduleRequest req;
  req.set = &set;
  req.selected = selection;
  req.available = Molecule(set.atom_type_count());
  req.expected_executions = sel.expected_executions;
  const Schedule schedule = make_scheduler(scheduler_name)->schedule(req);
  std::printf("%s loading sequence (%zu atoms):", scheduler_name.c_str(),
              schedule.loads.size());
  for (AtomTypeId t : schedule.loads)
    std::printf(" %s", set.library().type(t).name.c_str());
  std::printf("\n");
  return 0;
}

int cmd_h264(std::vector<std::string> args) {
  const unsigned acs = std::stoul(arg_value(args, "--acs").value_or("10"));
  const std::string scheduler_name = arg_value(args, "--scheduler").value_or("HEF");
  const int frames = std::stoi(arg_value(args, "--frames").value_or("20"));
  const bool with_molen = flag(args, "--molen");
  if (!args.empty()) return usage();

  const auto set = h264sis::build_h264_si_set();
  h264::WorkloadConfig config;
  config.frames = frames;
  std::fprintf(stderr, "encoding %d synthetic CIF frames...\n", frames);
  const auto workload = h264::generate_h264_workload(set, config);

  std::vector<std::string> schedulers =
      scheduler_name == "all" ? scheduler_names() : std::vector<std::string>{scheduler_name};
  for (const auto& name : schedulers) {
    auto scheduler = make_scheduler(name);
    RtmConfig rtm_config;
    rtm_config.container_count = acs;
    rtm_config.scheduler = scheduler.get();
    RunTimeManager rtm(&set, workload.trace.hot_spots.size(), rtm_config);
    h264::seed_default_forecasts(set, rtm);
    const SimResult result = run_trace(workload.trace, rtm);
    std::printf("%-5s @%2u ACs: %10.2f Mcycles (%llu atom loads)\n", name.c_str(), acs,
                result.total_cycles / 1e6,
                static_cast<unsigned long long>(result.atom_loads));
  }
  if (with_molen) {
    MolenConfig molen_config;
    molen_config.container_count = acs;
    MolenBackend molen(&set, workload.trace.hot_spots.size(), molen_config);
    h264::seed_default_forecasts(set, molen);
    const SimResult result = run_trace(workload.trace, molen);
    std::printf("Molen @%2u ACs: %10.2f Mcycles (%llu atom loads)\n", acs,
                result.total_cycles / 1e6,
                static_cast<unsigned long long>(result.atom_loads));
  }
  return 0;
}

int cmd_dse(std::vector<std::string> args) {
  const unsigned min_acs = std::stoul(arg_value(args, "--min").value_or("4"));
  const unsigned max_acs = std::stoul(arg_value(args, "--max").value_or("24"));
  const int frames = std::stoi(arg_value(args, "--frames").value_or("20"));
  if (!args.empty() || min_acs > max_acs) return usage();

  const auto set = h264sis::build_h264_si_set();
  h264::WorkloadConfig config;
  config.frames = frames;
  std::fprintf(stderr, "encoding %d synthetic CIF frames...\n", frames);
  const auto workload = h264::generate_h264_workload(set, config);

  // Software reference for the speedup column.
  SoftwareOnlyBackend sw(&set);
  const Cycles software = run_trace(workload.trace, sw).total_cycles;

  std::printf("#ACs  best-scheduler   Mcycles   speedup-vs-sw\n");
  for (unsigned acs = min_acs; acs <= max_acs; ++acs) {
    Cycles best = 0;
    std::string best_name;
    for (const auto& name : scheduler_names()) {
      auto scheduler = make_scheduler(name);
      RtmConfig rtm_config;
      rtm_config.container_count = acs;
      rtm_config.scheduler = scheduler.get();
      RunTimeManager rtm(&set, workload.trace.hot_spots.size(), rtm_config);
      h264::seed_default_forecasts(set, rtm);
      const Cycles cycles = run_trace(workload.trace, rtm).total_cycles;
      if (best == 0 || cycles < best) {
        best = cycles;
        best_name = name;
      }
    }
    std::printf("%4u  %-14s %9.2f   %6.2fx\n", acs, best_name.c_str(), best / 1e6,
                static_cast<double>(software) / static_cast<double>(best));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "describe") return cmd_describe(std::move(args));
    if (command == "schedule") return cmd_schedule(std::move(args));
    if (command == "h264") return cmd_h264(std::move(args));
    if (command == "dse") return cmd_dse(std::move(args));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
