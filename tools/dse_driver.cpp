// rispp_dse — automatic SI design-space exploration over the H.264 workload.
//
//   rispp_dse [--frames N] [--generations N] [--population N] [--mutations N]
//             [--budget N] [--seed N] [--scheduler NAME] [--acs A,B,...]
//             [--out PATH]
//
// Records (or loads from the shared trace cache) the H.264 workload trace,
// runs the DSE engine from the degraded hand-built platform
// (config::h264_platform_spec) and reports the discovered ISA's speedup
// against the hand-built one, the Pareto front, and the evaluator's cache
// effectiveness. The discovered platform is self-verified before the driver
// exits: the emitted `.rispp` text must round-trip through the platform
// parser to an identical spec, rebuild to the identical isa fingerprint, and
// replay the trace bit-exactly to the cycle counts the search scored it with
// (through the memo-less naive evaluator, so the memoized fast path is
// cross-checked end to end). --out additionally writes the platform file and
// re-verifies from disk.
//
// RISPP_DSE_SEED / RISPP_DSE_GENERATIONS override the defaults (flags beat
// the environment); garbage in either exits 2 naming the offender, as do
// malformed flag values (base/env.h strict parsing).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/env.h"
#include "base/table.h"
#include "config/h264_platform.h"
#include "dse/engine.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "sched/registry.h"
#include "sim/trace.h"

namespace {

using namespace rispp;

int usage() {
  std::fprintf(stderr,
               "usage: rispp_dse [--frames N] [--generations N] [--population N]\n"
               "                 [--mutations N] [--budget N] [--seed N]\n"
               "                 [--scheduler NAME] [--acs A,B,...] [--out PATH]\n");
  return 2;
}

long int_flag_or_die(const char* label, const char* text, long min_value, long max_value) {
  const auto value = parse_int_strict(text, min_value, max_value);
  if (!value) {
    std::fprintf(stderr, "%s=%s is not an integer in [%ld, %ld]\n", label, text, min_value,
                 max_value);
    std::exit(kEnvParseExitCode);
  }
  return *value;
}

std::vector<unsigned> parse_acs_or_die(const char* text) {
  std::vector<unsigned> budgets;
  std::stringstream ss(text);
  std::string piece;
  while (std::getline(ss, piece, ','))
    budgets.push_back(static_cast<unsigned>(int_flag_or_die("--acs", piece.c_str(), 1, 1'000)));
  if (budgets.empty()) {
    std::fprintf(stderr, "--acs needs at least one container budget\n");
    std::exit(kEnvParseExitCode);
  }
  return budgets;
}

WorkloadTrace load_or_generate(const SpecialInstructionSet& set, int frames) {
  h264::WorkloadConfig config;
  config.frames = frames;
  const auto path = h264::trace_cache_path(set, config);
  if (auto cached = try_load_trace_file(path)) return std::move(*cached);
  std::fprintf(stderr, "[dse] encoding %d synthetic CIF frames (cached at %s)...\n", frames,
               path.string().c_str());
  WorkloadTrace trace = h264::generate_h264_workload(set, config).trace;
  save_trace_file(trace, path);
  return trace;
}

/// Round-trip + bit-exact replay verification of the discovered platform.
bool verify_platform_text(const std::string& text, const dse::DseResult& result,
                          const WorkloadTrace& trace, const dse::DseOptions& options,
                          const char* source) {
  const config::PlatformSpec parsed = config::parse_platform_spec_string(text);
  if (!(parsed == result.best.point.spec)) {
    std::fprintf(stderr, "FAIL: %s did not round-trip to the discovered spec\n", source);
    return false;
  }
  const SpecialInstructionSet rebuilt = config::build_platform(parsed);
  if (fingerprint(rebuilt) != result.best.fingerprint) {
    std::fprintf(stderr, "FAIL: %s rebuilt to a different isa fingerprint\n", source);
    return false;
  }
  const dse::EvalResult replayed =
      dse::evaluate_candidate_naive(parsed, trace, result.reference_cycles, options);
  if (replayed.total_cycles != result.best.eval.total_cycles) {
    std::fprintf(stderr, "FAIL: %s replay diverged from the search's evaluation\n", source);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  dse::DseOptions options;
  options.seed = static_cast<std::uint64_t>(
      parse_env_int("RISPP_DSE_SEED", 1, 0, 1'000'000'000'000L));
  options.generations = static_cast<unsigned>(
      parse_env_int("RISPP_DSE_GENERATIONS", static_cast<long>(options.generations), 1, 10'000));
  int frames = 8;
  std::string out_path;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const char* value = i + 1 < args.size() ? args[i + 1].c_str() : nullptr;
    if (value == nullptr) {
      return usage();
    } else if (arg == "--frames") {
      frames = static_cast<int>(int_flag_or_die("--frames", value, 1, 10'000));
      ++i;
    } else if (arg == "--generations") {
      options.generations =
          static_cast<unsigned>(int_flag_or_die("--generations", value, 1, 10'000));
      ++i;
    } else if (arg == "--population") {
      options.population =
          static_cast<unsigned>(int_flag_or_die("--population", value, 1, 1'000));
      ++i;
    } else if (arg == "--mutations") {
      options.mutations_per_survivor =
          static_cast<unsigned>(int_flag_or_die("--mutations", value, 1, 1'000));
      ++i;
    } else if (arg == "--budget") {
      options.budget =
          static_cast<unsigned>(int_flag_or_die("--budget", value, 1, 1'000'000));
      ++i;
    } else if (arg == "--seed") {
      options.seed =
          static_cast<std::uint64_t>(int_flag_or_die("--seed", value, 0, 1'000'000'000'000L));
      ++i;
    } else if (arg == "--scheduler") {
      if (!has_scheduler(value)) {
        std::fprintf(stderr, "--scheduler: unknown strategy '%s'\n", value);
        return 2;
      }
      options.scheduler = value;
      ++i;
    } else if (arg == "--acs") {
      options.ac_budgets = parse_acs_or_die(value);
      ++i;
    } else if (arg == "--out") {
      out_path = value;
      ++i;
    } else {
      return usage();
    }
  }

  const config::PlatformSpec handbuilt = config::h264_platform_spec();
  // The trace is recorded against the Table 1 set; h264_platform_spec builds
  // the identical ISA (equal fingerprint), so the same cache entry serves
  // the benches and this driver.
  const SpecialInstructionSet handbuilt_set = h264sis::build_h264_si_set();
  const WorkloadTrace trace = load_or_generate(handbuilt_set, frames);

  std::printf("dse: %d frames, %u generations x %u survivors x %u mutations, seed %llu\n",
              frames, options.generations, options.population,
              options.mutations_per_survivor,
              static_cast<unsigned long long>(options.seed));
  const dse::DseResult result = run_dse(trace, handbuilt, options);

  const std::uint64_t scored = result.cache_hits + result.abandoned + result.replays;
  TextTable table({"metric", "value"});
  table.add("software reference (cycles)", result.reference_cycles);
  table.add("hand-built mean speedup", format_fixed(result.handbuilt_eval.mean_speedup, 3));
  table.add("discovered mean speedup", format_fixed(result.best.eval.mean_speedup, 3));
  table.add("discovered / hand-built", format_fixed(result.discovered_vs_handbuilt, 3));
  table.add("discovered slices", result.best.eval.slices);
  table.add("pareto front size", result.front.size());
  table.add("generations run", result.generations_run);
  table.add("proposals", result.proposals);
  table.add("invalid candidates", result.invalid);
  table.add("eval cache hits", result.cache_hits);
  table.add("abandoned (bound)", result.abandoned);
  table.add("full replays", result.replays);
  table.add("eval cache hit rate",
            format_fixed(scored != 0 ? static_cast<double>(result.cache_hits) /
                                           static_cast<double>(scored)
                                     : 0.0,
                         3));
  std::fputs(table.render().c_str(), stdout);

  if (!verify_platform_text(result.platform_text, result, trace, options, "emitted text"))
    return 1;
  std::printf("self-check: emitted platform round-trips and replays bit-exactly\n");

  if (!out_path.empty()) {
    {
      std::ofstream out(out_path);
      if (!out.good()) {
        std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
        return 1;
      }
      out << result.platform_text;
    }
    std::ifstream in(out_path);
    std::stringstream read_back;
    read_back << in.rdbuf();
    if (!verify_platform_text(read_back.str(), result, trace, options, out_path.c_str()))
      return 1;
    std::printf("wrote %s (verified from disk)\n", out_path.c_str());
  }
  return 0;
}
