// Adaptivity example: the run-time system reacting to a workload whose SI
// mix changes mid-run — the situation the paper argues cannot be served by
// design-time-fixed instruction sets ("non-predictable application
// behavior").
//
// A synthetic application alternates between two phases inside the same hot
// spot: a SAD-heavy phase (regular motion) and a SATD-heavy phase (complex
// motion). The online monitor shifts the forecast, selection re-balances the
// Atom Containers, and the HEF scheduler reorders the upgrades.
#include <cstdio>

#include "base/table.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "rtm/run_time_manager.h"
#include "sched/hef.h"
#include "sim/executor.h"

using namespace rispp;

namespace {

WorkloadTrace phased_trace(const SpecialInstructionSet& set, int instances_per_phase) {
  const SiId sad = set.find("SAD").value();
  const SiId satd = set.find("SATD").value();
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"ME", {sad, satd}, 8}};
  for (int phase = 0; phase < 4; ++phase) {
    const bool satd_heavy = phase % 2 == 1;
    for (int i = 0; i < instances_per_phase; ++i) {
      HotSpotInstance inst;
      inst.hot_spot = 0;
      inst.entry_overhead = 1'000;
      for (int k = 0; k < 6'000; ++k) {
        const bool satd_exec = satd_heavy ? (k % 10 != 0) : (k % 20 == 0);
        inst.executions.push_back(satd_exec ? satd : sad);
      }
      trace.instances.push_back(std::move(inst));
    }
  }
  return trace;
}

}  // namespace

int main() {
  const SpecialInstructionSet set = h264sis::build_h264_si_set();
  const SiId sad = set.find("SAD").value();
  const SiId satd = set.find("SATD").value();
  const WorkloadTrace trace = phased_trace(set, 4);

  auto run = [&](ForecastMode mode, const char* label) {
    HefScheduler hef;
    RtmConfig config;
    config.container_count = 9;
    config.scheduler = &hef;
    config.forecast_mode = mode;
    RunTimeManager rtm(&set, 1, config);
    // Seed with the phase-1 (SAD-heavy) profile — the static system never
    // learns that phase 2 is SATD-heavy.
    rtm.seed_forecast(0, sad, 5'500);
    rtm.seed_forecast(0, satd, 500);
    const SimResult result = run_trace(trace, rtm);
    std::printf("  %-22s %8.2f Mcycles (%llu atom loads)\n", label,
                result.total_cycles / 1e6,
                static_cast<unsigned long long>(result.atom_loads));
    return result.total_cycles;
  };

  std::printf("Workload: 16 ME instances alternating SAD-heavy and SATD-heavy phases\n\n");
  const Cycles adaptive = run(ForecastMode::kMonitored, "online monitoring");
  const Cycles fixed = run(ForecastMode::kStaticSeeds, "static (design-time)");
  const Cycles oracle = run(ForecastMode::kOracle, "oracle forecast");

  std::printf("\nadaptation gain over static forecasts: %.2fx (oracle bound: %.2fx)\n",
              static_cast<double>(fixed) / adaptive,
              static_cast<double>(fixed) / oracle);
  std::printf("This is Run-Time Manager task II (Section 3.1): comparing monitored\n"
              "executions against expectations and updating them per hot spot.\n");
  return 0;
}
