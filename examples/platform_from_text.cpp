// Example: defining a whole RISPP platform in the textual description
// language and running the run-time system on it — no C++ required to add a
// new accelerator domain.
//
// The platform here is a small audio feature extractor: windowing, a
// filterbank, a log-energy stage. Three SIs over four atom types.
#include <cstdio>

#include "config/platform_parser.h"
#include "rtm/run_time_manager.h"
#include "sched/registry.h"
#include "sim/executor.h"

using namespace rispp;

namespace {

constexpr const char* kPlatformText = R"(
# Audio feature extractor platform.
# atom   name        op-lat  sw-cycles  slices
atom     WindowMul   1       18         280
atom     BiquadTap   2       36         520
atom     MacTree     2       30         450
atom     LogApprox   3       52         610

si "Window" trap=48 molecules=4
  caps WindowMul=4
  layer WindowMul x16
end

si "Filterbank" trap=64
  caps BiquadTap=4 MacTree=2
  block x8
    layer BiquadTap x2
    layer MacTree x1
  end
end

si "LogEnergy" trap=48 molecules=3
  caps MacTree=2 LogApprox=2
  layer MacTree x4
  layer LogApprox x2
end
)";

}  // namespace

int main() {
  const SpecialInstructionSet set = config::parse_platform_string(kPlatformText);
  std::printf("%s\n", config::describe_platform(set).c_str());

  // One hot spot: a frame of audio = Window, then the filterbank per band,
  // then the energy summary.
  WorkloadTrace trace;
  const SiId window = set.find("Window").value();
  const SiId filter = set.find("Filterbank").value();
  const SiId energy = set.find("LogEnergy").value();
  trace.hot_spots = {HotSpotInfo{"frame", {window, filter, energy}, 6}};
  for (int frame = 0; frame < 40; ++frame) {
    HotSpotInstance inst{0, {}, 800};
    for (int hop = 0; hop < 24; ++hop) {
      inst.executions.push_back(window);
      for (int band = 0; band < 12; ++band) inst.executions.push_back(filter);
      inst.executions.push_back(energy);
    }
    trace.instances.push_back(std::move(inst));
  }

  std::printf("simulating %zu SI executions at 6 Atom Containers:\n",
              trace.total_si_executions());
  for (const auto& name : scheduler_names()) {
    auto scheduler = make_scheduler(name);
    RtmConfig config;
    config.container_count = 6;
    config.scheduler = scheduler.get();
    RunTimeManager rtm(&set, 1, config);
    rtm.seed_forecast(0, window, 24);
    rtm.seed_forecast(0, filter, 288);
    rtm.seed_forecast(0, energy, 24);
    const SimResult result = run_trace(trace, rtm);
    std::printf("  %-5s %8.2f Mcycles (%llu atom loads)\n", name.c_str(),
                result.total_cycles / 1e6,
                static_cast<unsigned long long>(result.atom_loads));
  }
  return 0;
}
