// Designer flow example: building the Figure 3 Motion Compensation SI from
// its data-path modules and inspecting what the run-time system derives.
//
// Shows how a platform designer would add a new Special Instruction:
//   * declare the atom types (BytePack, PointFilter, Clip3),
//   * wire the occurrence graph,
//   * let the library enumerate the Pareto molecule set under instance caps,
//   * inspect the upgrade staircase each scheduler would walk.
#include <cstdio>

#include "base/table.h"
#include "dpg/enumerate.h"
#include "dpg/list_scheduler.h"
#include "sched/registry.h"

using namespace rispp;

int main() {
  // Atom types of Figure 3. PointFilter is the 6-tap half-pel interpolator;
  // its internal adder tree is the "atom-level parallelism" fixed at design
  // time, which is why one op takes only 2 cycles.
  AtomLibrary library;
  const AtomTypeId bytepack =
      library.add({.name = "BytePack", .op_latency = 1, .sw_op_cycles = 16, .slices = 340});
  const AtomTypeId pointfilter =
      library.add({.name = "PointFilter", .op_latency = 2, .sw_op_cycles = 56, .slices = 620});
  const AtomTypeId clip3 =
      library.add({.name = "Clip3", .op_latency = 1, .sw_op_cycles = 12, .slices = 210});

  SpecialInstructionSet set(std::move(library));

  // The MC data path over eight 4x8 sub-blocks: pack the source bytes,
  // filter, clip — exactly the Figure 3 pipeline.
  DataPathGraph graph(&set.library());
  for (int sub = 0; sub < 8; ++sub) {
    const auto packs = graph.add_layer(bytepack, 4);
    const auto filters = graph.add_layer(pointfilter, 6, packs);
    graph.add_layer(clip3, 2, filters);
  }
  std::printf("MC graph: %zu atom occurrences, critical path %llu cycles, software "
              "body %llu cycles\n\n",
              graph.node_count(),
              static_cast<unsigned long long>(graph.critical_path()),
              static_cast<unsigned long long>(graph.software_cycles()));

  const SiId mc = set.add_si("MC", std::move(graph), Molecule{2, 6, 2}, /*trap_overhead=*/64);

  TextTable molecules({"molecule (BP,PF,C3)", "#atoms", "latency [cyc]", "speedup vs trap"});
  for (const auto& m : set.si(mc).molecules)
    molecules.add(m.atoms.to_string(), m.atoms.determinant(), m.latency,
                  format_fixed(static_cast<double>(set.si(mc).software_latency) /
                                   static_cast<double>(m.latency),
                               1) + "x");
  std::printf("derived molecule set (Pareto-cleaned):\n%s\n", molecules.render().c_str());

  // The upgrade staircase each scheduler would walk from a cold start.
  ScheduleRequest request;
  request.set = &set;
  request.selected = {SiRef{mc, static_cast<MoleculeId>(set.si(mc).molecules.size() - 1)}};
  request.available = Molecule(set.atom_type_count());
  request.expected_executions = {1'400};
  for (const auto& name : scheduler_names()) {
    const Schedule schedule = make_scheduler(name)->schedule(request);
    std::printf("%-4s upgrade steps:", name.c_str());
    for (const UpgradeStep& step : schedule.steps)
      std::printf(" %s", set.si(mc).molecule(step.molecule.mol).atoms.to_string().c_str());
    std::printf("\n");
  }
  std::printf("\nEvery path ends at the selected molecule; the intermediate stops are\n"
              "what the paper calls stepwise SI upgrading (Section 3).\n");
  return 0;
}
