// End-to-end example: encode a synthetic CIF sequence with the functional
// H.264-subset encoder, then replay the recorded SI trace on the RISPP
// platform (HEF scheduler) and on the Molen-like baseline.
//
// Usage: h264_encode [frames] [atom_containers]   (defaults: 30 frames, 12 ACs)
#include <cstdio>
#include <cstdlib>

#include "baselines/molen.h"
#include "baselines/software_only.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "rtm/run_time_manager.h"
#include "sched/hef.h"
#include "sim/executor.h"

using namespace rispp;

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 30;
  const unsigned acs = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 12;

  const SpecialInstructionSet set = h264sis::build_h264_si_set();

  std::printf("encoding %d synthetic CIF frames...\n", frames);
  h264::WorkloadConfig config;
  config.frames = frames;
  const h264::WorkloadResult workload = h264::generate_h264_workload(set, config);
  std::printf("  mean luma PSNR %.2f dB, %d intra / %d inter MBs\n",
              workload.mean_psnr, workload.intra_mbs, workload.inter_mbs);
  std::printf("  %zu SI executions recorded across %zu hot-spot instances:\n",
              workload.trace.total_si_executions(), workload.trace.instances.size());
  for (SiId si = 0; si < set.si_count(); ++si)
    std::printf("    %-10s %8llu\n", set.si(si).name.c_str(),
                static_cast<unsigned long long>(workload.trace.executions_of(si)));

  // Replay on the three systems.
  SoftwareOnlyBackend software(&set);
  const SimResult sw = run_trace(workload.trace, software);

  HefScheduler hef;
  RtmConfig rtm_config;
  rtm_config.container_count = acs;
  rtm_config.scheduler = &hef;
  RunTimeManager rispp(&set, workload.trace.hot_spots.size(), rtm_config);
  h264::seed_default_forecasts(set, rispp);
  const SimResult upgraded = run_trace(workload.trace, rispp);

  MolenConfig molen_config;
  molen_config.container_count = acs;
  MolenBackend molen(&set, workload.trace.hot_spots.size(), molen_config);
  h264::seed_default_forecasts(set, molen);
  const SimResult fixed = run_trace(workload.trace, molen);

  std::printf("\ncycle-level replay @%u Atom Containers:\n", acs);
  std::printf("  base processor only : %8.1f Mcycles\n", sw.total_cycles / 1e6);
  std::printf("  Molen-like baseline : %8.1f Mcycles (%.2fx vs software)\n",
              fixed.total_cycles / 1e6,
              static_cast<double>(sw.total_cycles) / fixed.total_cycles);
  std::printf("  RISPP + HEF         : %8.1f Mcycles (%.2fx vs software, %.2fx vs "
              "Molen, %llu atom loads)\n",
              upgraded.total_cycles / 1e6,
              static_cast<double>(sw.total_cycles) / upgraded.total_cycles,
              static_cast<double>(fixed.total_cycles) / upgraded.total_cycles,
              static_cast<unsigned long long>(upgraded.atom_loads));
  return 0;
}
