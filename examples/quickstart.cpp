// Quickstart: the RISPP run-time system in ~100 lines.
//
// 1. Define atom types and a Special Instruction from its data-path graph —
//    the molecule list (area/latency trade-offs) is derived automatically.
// 2. Ask the HEF scheduler for an atom loading sequence.
// 3. Replay a small workload on the cycle-level simulator and watch the SI
//    being upgraded step by step.
//
// Build: cmake --build build --target quickstart && ./build/examples/quickstart
#include <cstdio>

#include "rtm/run_time_manager.h"
#include "sched/hef.h"
#include "sim/executor.h"

using namespace rispp;

int main() {
  // --- 1. The platform: two atom types, one SI ("FIR" like).
  AtomLibrary library;
  library.add({.name = "MulAcc", .op_latency = 2, .sw_op_cycles = 24, .slices = 450});
  library.add({.name = "Shift", .op_latency = 1, .sw_op_cycles = 8, .slices = 200});

  SpecialInstructionSet set(std::move(library));
  DataPathGraph graph(&set.library());
  const auto taps = graph.add_layer(/*type=*/0, /*count=*/12);  // 12 multiply-accumulates
  graph.add_layer(/*type=*/1, /*count=*/4, taps);               // 4 normalization shifts
  const SiId fir = set.add_si("FIR12", std::move(graph),
                              /*instance_caps=*/Molecule{4, 2},
                              /*trap_overhead=*/64);

  std::printf("SI FIR12: software latency %llu cycles; derived molecules:\n",
              static_cast<unsigned long long>(set.si(fir).software_latency));
  for (const auto& m : set.si(fir).molecules)
    std::printf("  atoms %-6s -> %llu cycles\n", m.atoms.to_string().c_str(),
                static_cast<unsigned long long>(m.latency));

  // --- 2. A schedule: upgrade FIR12 to its fastest molecule from cold.
  ScheduleRequest request;
  request.set = &set;
  request.selected = {SiRef{fir, static_cast<MoleculeId>(set.si(fir).molecules.size() - 1)}};
  request.available = Molecule(set.atom_type_count());
  request.expected_executions = {20'000};

  const HefScheduler hef;
  const Schedule schedule = hef.schedule(request);
  std::printf("\nHEF loading sequence:");
  for (AtomTypeId t : schedule.loads)
    std::printf(" %s", set.library().type(t).name.c_str());
  std::printf("\n(%zu molecule-level upgrade steps)\n\n", schedule.steps.size());

  // --- 3. Simulate a hot spot of 20,000 FIR executions.
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"loop", {fir}, /*per_execution_overhead=*/6}};
  trace.instances = {HotSpotInstance{0, std::vector<SiId>(20'000, fir), 500}};

  RtmConfig config;
  config.container_count = 6;
  config.scheduler = &hef;
  RunTimeManager rtm(&set, /*hot_spot_count=*/1, config);
  rtm.seed_forecast(0, fir, 20'000);

  SimStats stats(set.si_count());
  const SimResult result = run_trace(trace, rtm, &stats);
  std::printf("simulated %llu executions in %llu cycles (%llu atom loads)\n",
              static_cast<unsigned long long>(result.si_executions),
              static_cast<unsigned long long>(result.total_cycles),
              static_cast<unsigned long long>(result.atom_loads));
  std::printf("FIR12 latency over time (gradual upgrade):\n");
  for (const auto& point : stats.latency_timeline(fir))
    std::printf("  from cycle %8llu: %llu cycles/execution\n",
                static_cast<unsigned long long>(point.at),
                static_cast<unsigned long long>(point.latency));
  return 0;
}
