file(REMOVE_RECURSE
  "CMakeFiles/h264_encode.dir/h264_encode.cpp.o"
  "CMakeFiles/h264_encode.dir/h264_encode.cpp.o.d"
  "h264_encode"
  "h264_encode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h264_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
