# Empty compiler generated dependencies file for h264_encode.
# This may be replaced when dependencies are built.
