# Empty dependencies file for platform_from_text.
# This may be replaced when dependencies are built.
