file(REMOVE_RECURSE
  "CMakeFiles/platform_from_text.dir/platform_from_text.cpp.o"
  "CMakeFiles/platform_from_text.dir/platform_from_text.cpp.o.d"
  "platform_from_text"
  "platform_from_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_from_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
