# Empty dependencies file for adaptive_workload.
# This may be replaced when dependencies are built.
