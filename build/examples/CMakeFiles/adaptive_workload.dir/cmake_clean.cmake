file(REMOVE_RECURSE
  "CMakeFiles/adaptive_workload.dir/adaptive_workload.cpp.o"
  "CMakeFiles/adaptive_workload.dir/adaptive_workload.cpp.o.d"
  "adaptive_workload"
  "adaptive_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
