file(REMOVE_RECURSE
  "CMakeFiles/custom_si.dir/custom_si.cpp.o"
  "CMakeFiles/custom_si.dir/custom_si.cpp.o.d"
  "custom_si"
  "custom_si.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_si.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
