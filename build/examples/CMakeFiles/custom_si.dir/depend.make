# Empty dependencies file for custom_si.
# This may be replaced when dependencies are built.
