file(REMOVE_RECURSE
  "librispp_h264.a"
)
