
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/h264/bitstream.cpp" "src/CMakeFiles/rispp_h264.dir/h264/bitstream.cpp.o" "gcc" "src/CMakeFiles/rispp_h264.dir/h264/bitstream.cpp.o.d"
  "/root/repo/src/h264/deblock.cpp" "src/CMakeFiles/rispp_h264.dir/h264/deblock.cpp.o" "gcc" "src/CMakeFiles/rispp_h264.dir/h264/deblock.cpp.o.d"
  "/root/repo/src/h264/decoder.cpp" "src/CMakeFiles/rispp_h264.dir/h264/decoder.cpp.o" "gcc" "src/CMakeFiles/rispp_h264.dir/h264/decoder.cpp.o.d"
  "/root/repo/src/h264/encoder.cpp" "src/CMakeFiles/rispp_h264.dir/h264/encoder.cpp.o" "gcc" "src/CMakeFiles/rispp_h264.dir/h264/encoder.cpp.o.d"
  "/root/repo/src/h264/entropy.cpp" "src/CMakeFiles/rispp_h264.dir/h264/entropy.cpp.o" "gcc" "src/CMakeFiles/rispp_h264.dir/h264/entropy.cpp.o.d"
  "/root/repo/src/h264/frame.cpp" "src/CMakeFiles/rispp_h264.dir/h264/frame.cpp.o" "gcc" "src/CMakeFiles/rispp_h264.dir/h264/frame.cpp.o.d"
  "/root/repo/src/h264/interpolate.cpp" "src/CMakeFiles/rispp_h264.dir/h264/interpolate.cpp.o" "gcc" "src/CMakeFiles/rispp_h264.dir/h264/interpolate.cpp.o.d"
  "/root/repo/src/h264/intra.cpp" "src/CMakeFiles/rispp_h264.dir/h264/intra.cpp.o" "gcc" "src/CMakeFiles/rispp_h264.dir/h264/intra.cpp.o.d"
  "/root/repo/src/h264/kernels.cpp" "src/CMakeFiles/rispp_h264.dir/h264/kernels.cpp.o" "gcc" "src/CMakeFiles/rispp_h264.dir/h264/kernels.cpp.o.d"
  "/root/repo/src/h264/motion_search.cpp" "src/CMakeFiles/rispp_h264.dir/h264/motion_search.cpp.o" "gcc" "src/CMakeFiles/rispp_h264.dir/h264/motion_search.cpp.o.d"
  "/root/repo/src/h264/quant.cpp" "src/CMakeFiles/rispp_h264.dir/h264/quant.cpp.o" "gcc" "src/CMakeFiles/rispp_h264.dir/h264/quant.cpp.o.d"
  "/root/repo/src/h264/synthetic_video.cpp" "src/CMakeFiles/rispp_h264.dir/h264/synthetic_video.cpp.o" "gcc" "src/CMakeFiles/rispp_h264.dir/h264/synthetic_video.cpp.o.d"
  "/root/repo/src/h264/transform.cpp" "src/CMakeFiles/rispp_h264.dir/h264/transform.cpp.o" "gcc" "src/CMakeFiles/rispp_h264.dir/h264/transform.cpp.o.d"
  "/root/repo/src/h264/workload.cpp" "src/CMakeFiles/rispp_h264.dir/h264/workload.cpp.o" "gcc" "src/CMakeFiles/rispp_h264.dir/h264/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rispp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_dpg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_alg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
