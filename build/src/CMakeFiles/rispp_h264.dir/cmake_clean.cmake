file(REMOVE_RECURSE
  "CMakeFiles/rispp_h264.dir/h264/bitstream.cpp.o"
  "CMakeFiles/rispp_h264.dir/h264/bitstream.cpp.o.d"
  "CMakeFiles/rispp_h264.dir/h264/deblock.cpp.o"
  "CMakeFiles/rispp_h264.dir/h264/deblock.cpp.o.d"
  "CMakeFiles/rispp_h264.dir/h264/decoder.cpp.o"
  "CMakeFiles/rispp_h264.dir/h264/decoder.cpp.o.d"
  "CMakeFiles/rispp_h264.dir/h264/encoder.cpp.o"
  "CMakeFiles/rispp_h264.dir/h264/encoder.cpp.o.d"
  "CMakeFiles/rispp_h264.dir/h264/entropy.cpp.o"
  "CMakeFiles/rispp_h264.dir/h264/entropy.cpp.o.d"
  "CMakeFiles/rispp_h264.dir/h264/frame.cpp.o"
  "CMakeFiles/rispp_h264.dir/h264/frame.cpp.o.d"
  "CMakeFiles/rispp_h264.dir/h264/interpolate.cpp.o"
  "CMakeFiles/rispp_h264.dir/h264/interpolate.cpp.o.d"
  "CMakeFiles/rispp_h264.dir/h264/intra.cpp.o"
  "CMakeFiles/rispp_h264.dir/h264/intra.cpp.o.d"
  "CMakeFiles/rispp_h264.dir/h264/kernels.cpp.o"
  "CMakeFiles/rispp_h264.dir/h264/kernels.cpp.o.d"
  "CMakeFiles/rispp_h264.dir/h264/motion_search.cpp.o"
  "CMakeFiles/rispp_h264.dir/h264/motion_search.cpp.o.d"
  "CMakeFiles/rispp_h264.dir/h264/quant.cpp.o"
  "CMakeFiles/rispp_h264.dir/h264/quant.cpp.o.d"
  "CMakeFiles/rispp_h264.dir/h264/synthetic_video.cpp.o"
  "CMakeFiles/rispp_h264.dir/h264/synthetic_video.cpp.o.d"
  "CMakeFiles/rispp_h264.dir/h264/transform.cpp.o"
  "CMakeFiles/rispp_h264.dir/h264/transform.cpp.o.d"
  "CMakeFiles/rispp_h264.dir/h264/workload.cpp.o"
  "CMakeFiles/rispp_h264.dir/h264/workload.cpp.o.d"
  "librispp_h264.a"
  "librispp_h264.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_h264.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
