# Empty dependencies file for rispp_h264.
# This may be replaced when dependencies are built.
