file(REMOVE_RECURSE
  "CMakeFiles/rispp_baselines.dir/baselines/molen.cpp.o"
  "CMakeFiles/rispp_baselines.dir/baselines/molen.cpp.o.d"
  "CMakeFiles/rispp_baselines.dir/baselines/onechip.cpp.o"
  "CMakeFiles/rispp_baselines.dir/baselines/onechip.cpp.o.d"
  "CMakeFiles/rispp_baselines.dir/baselines/software_only.cpp.o"
  "CMakeFiles/rispp_baselines.dir/baselines/software_only.cpp.o.d"
  "CMakeFiles/rispp_baselines.dir/baselines/static_asip.cpp.o"
  "CMakeFiles/rispp_baselines.dir/baselines/static_asip.cpp.o.d"
  "librispp_baselines.a"
  "librispp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
