file(REMOVE_RECURSE
  "librispp_baselines.a"
)
