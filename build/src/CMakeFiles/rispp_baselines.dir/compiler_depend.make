# Empty compiler generated dependencies file for rispp_baselines.
# This may be replaced when dependencies are built.
