file(REMOVE_RECURSE
  "CMakeFiles/rispp_dpg.dir/dpg/atom_library.cpp.o"
  "CMakeFiles/rispp_dpg.dir/dpg/atom_library.cpp.o.d"
  "CMakeFiles/rispp_dpg.dir/dpg/enumerate.cpp.o"
  "CMakeFiles/rispp_dpg.dir/dpg/enumerate.cpp.o.d"
  "CMakeFiles/rispp_dpg.dir/dpg/graph.cpp.o"
  "CMakeFiles/rispp_dpg.dir/dpg/graph.cpp.o.d"
  "CMakeFiles/rispp_dpg.dir/dpg/list_scheduler.cpp.o"
  "CMakeFiles/rispp_dpg.dir/dpg/list_scheduler.cpp.o.d"
  "librispp_dpg.a"
  "librispp_dpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_dpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
