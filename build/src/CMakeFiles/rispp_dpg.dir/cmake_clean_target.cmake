file(REMOVE_RECURSE
  "librispp_dpg.a"
)
