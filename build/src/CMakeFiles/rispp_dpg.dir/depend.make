# Empty dependencies file for rispp_dpg.
# This may be replaced when dependencies are built.
