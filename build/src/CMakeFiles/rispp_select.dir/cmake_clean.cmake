file(REMOVE_RECURSE
  "CMakeFiles/rispp_select.dir/select/optimal.cpp.o"
  "CMakeFiles/rispp_select.dir/select/optimal.cpp.o.d"
  "CMakeFiles/rispp_select.dir/select/selection.cpp.o"
  "CMakeFiles/rispp_select.dir/select/selection.cpp.o.d"
  "librispp_select.a"
  "librispp_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
