# Empty dependencies file for rispp_select.
# This may be replaced when dependencies are built.
