file(REMOVE_RECURSE
  "librispp_select.a"
)
