# Empty dependencies file for rispp_hw.
# This may be replaced when dependencies are built.
