
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/atom_container.cpp" "src/CMakeFiles/rispp_hw.dir/hw/atom_container.cpp.o" "gcc" "src/CMakeFiles/rispp_hw.dir/hw/atom_container.cpp.o.d"
  "/root/repo/src/hw/bitstream.cpp" "src/CMakeFiles/rispp_hw.dir/hw/bitstream.cpp.o" "gcc" "src/CMakeFiles/rispp_hw.dir/hw/bitstream.cpp.o.d"
  "/root/repo/src/hw/eviction.cpp" "src/CMakeFiles/rispp_hw.dir/hw/eviction.cpp.o" "gcc" "src/CMakeFiles/rispp_hw.dir/hw/eviction.cpp.o.d"
  "/root/repo/src/hw/reconfig_port.cpp" "src/CMakeFiles/rispp_hw.dir/hw/reconfig_port.cpp.o" "gcc" "src/CMakeFiles/rispp_hw.dir/hw/reconfig_port.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rispp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_dpg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_alg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
