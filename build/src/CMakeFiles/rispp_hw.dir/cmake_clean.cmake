file(REMOVE_RECURSE
  "CMakeFiles/rispp_hw.dir/hw/atom_container.cpp.o"
  "CMakeFiles/rispp_hw.dir/hw/atom_container.cpp.o.d"
  "CMakeFiles/rispp_hw.dir/hw/bitstream.cpp.o"
  "CMakeFiles/rispp_hw.dir/hw/bitstream.cpp.o.d"
  "CMakeFiles/rispp_hw.dir/hw/eviction.cpp.o"
  "CMakeFiles/rispp_hw.dir/hw/eviction.cpp.o.d"
  "CMakeFiles/rispp_hw.dir/hw/reconfig_port.cpp.o"
  "CMakeFiles/rispp_hw.dir/hw/reconfig_port.cpp.o.d"
  "librispp_hw.a"
  "librispp_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
