file(REMOVE_RECURSE
  "librispp_hw.a"
)
