file(REMOVE_RECURSE
  "CMakeFiles/rispp_base.dir/base/csv.cpp.o"
  "CMakeFiles/rispp_base.dir/base/csv.cpp.o.d"
  "CMakeFiles/rispp_base.dir/base/log.cpp.o"
  "CMakeFiles/rispp_base.dir/base/log.cpp.o.d"
  "CMakeFiles/rispp_base.dir/base/prng.cpp.o"
  "CMakeFiles/rispp_base.dir/base/prng.cpp.o.d"
  "CMakeFiles/rispp_base.dir/base/table.cpp.o"
  "CMakeFiles/rispp_base.dir/base/table.cpp.o.d"
  "librispp_base.a"
  "librispp_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
