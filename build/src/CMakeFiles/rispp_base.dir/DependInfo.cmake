
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/csv.cpp" "src/CMakeFiles/rispp_base.dir/base/csv.cpp.o" "gcc" "src/CMakeFiles/rispp_base.dir/base/csv.cpp.o.d"
  "/root/repo/src/base/log.cpp" "src/CMakeFiles/rispp_base.dir/base/log.cpp.o" "gcc" "src/CMakeFiles/rispp_base.dir/base/log.cpp.o.d"
  "/root/repo/src/base/prng.cpp" "src/CMakeFiles/rispp_base.dir/base/prng.cpp.o" "gcc" "src/CMakeFiles/rispp_base.dir/base/prng.cpp.o.d"
  "/root/repo/src/base/table.cpp" "src/CMakeFiles/rispp_base.dir/base/table.cpp.o" "gcc" "src/CMakeFiles/rispp_base.dir/base/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
