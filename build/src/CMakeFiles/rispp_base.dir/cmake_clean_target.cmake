file(REMOVE_RECURSE
  "librispp_base.a"
)
