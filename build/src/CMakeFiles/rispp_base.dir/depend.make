# Empty dependencies file for rispp_base.
# This may be replaced when dependencies are built.
