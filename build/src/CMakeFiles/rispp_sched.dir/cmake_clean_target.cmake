file(REMOVE_RECURSE
  "librispp_sched.a"
)
