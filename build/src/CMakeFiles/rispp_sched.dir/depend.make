# Empty dependencies file for rispp_sched.
# This may be replaced when dependencies are built.
