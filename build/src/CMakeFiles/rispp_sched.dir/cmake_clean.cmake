file(REMOVE_RECURSE
  "CMakeFiles/rispp_sched.dir/sched/asf.cpp.o"
  "CMakeFiles/rispp_sched.dir/sched/asf.cpp.o.d"
  "CMakeFiles/rispp_sched.dir/sched/fsfr.cpp.o"
  "CMakeFiles/rispp_sched.dir/sched/fsfr.cpp.o.d"
  "CMakeFiles/rispp_sched.dir/sched/hef.cpp.o"
  "CMakeFiles/rispp_sched.dir/sched/hef.cpp.o.d"
  "CMakeFiles/rispp_sched.dir/sched/oracle.cpp.o"
  "CMakeFiles/rispp_sched.dir/sched/oracle.cpp.o.d"
  "CMakeFiles/rispp_sched.dir/sched/registry.cpp.o"
  "CMakeFiles/rispp_sched.dir/sched/registry.cpp.o.d"
  "CMakeFiles/rispp_sched.dir/sched/schedule.cpp.o"
  "CMakeFiles/rispp_sched.dir/sched/schedule.cpp.o.d"
  "CMakeFiles/rispp_sched.dir/sched/sjf.cpp.o"
  "CMakeFiles/rispp_sched.dir/sched/sjf.cpp.o.d"
  "librispp_sched.a"
  "librispp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
