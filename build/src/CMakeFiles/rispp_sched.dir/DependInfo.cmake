
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/asf.cpp" "src/CMakeFiles/rispp_sched.dir/sched/asf.cpp.o" "gcc" "src/CMakeFiles/rispp_sched.dir/sched/asf.cpp.o.d"
  "/root/repo/src/sched/fsfr.cpp" "src/CMakeFiles/rispp_sched.dir/sched/fsfr.cpp.o" "gcc" "src/CMakeFiles/rispp_sched.dir/sched/fsfr.cpp.o.d"
  "/root/repo/src/sched/hef.cpp" "src/CMakeFiles/rispp_sched.dir/sched/hef.cpp.o" "gcc" "src/CMakeFiles/rispp_sched.dir/sched/hef.cpp.o.d"
  "/root/repo/src/sched/oracle.cpp" "src/CMakeFiles/rispp_sched.dir/sched/oracle.cpp.o" "gcc" "src/CMakeFiles/rispp_sched.dir/sched/oracle.cpp.o.d"
  "/root/repo/src/sched/registry.cpp" "src/CMakeFiles/rispp_sched.dir/sched/registry.cpp.o" "gcc" "src/CMakeFiles/rispp_sched.dir/sched/registry.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/CMakeFiles/rispp_sched.dir/sched/schedule.cpp.o" "gcc" "src/CMakeFiles/rispp_sched.dir/sched/schedule.cpp.o.d"
  "/root/repo/src/sched/sjf.cpp" "src/CMakeFiles/rispp_sched.dir/sched/sjf.cpp.o" "gcc" "src/CMakeFiles/rispp_sched.dir/sched/sjf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rispp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_dpg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_alg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
