file(REMOVE_RECURSE
  "librispp_sim.a"
)
