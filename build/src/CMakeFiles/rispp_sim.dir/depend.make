# Empty dependencies file for rispp_sim.
# This may be replaced when dependencies are built.
