file(REMOVE_RECURSE
  "CMakeFiles/rispp_sim.dir/sim/executor.cpp.o"
  "CMakeFiles/rispp_sim.dir/sim/executor.cpp.o.d"
  "CMakeFiles/rispp_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/rispp_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/rispp_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/rispp_sim.dir/sim/trace.cpp.o.d"
  "librispp_sim.a"
  "librispp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
