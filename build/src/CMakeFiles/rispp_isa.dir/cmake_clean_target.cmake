file(REMOVE_RECURSE
  "librispp_isa.a"
)
