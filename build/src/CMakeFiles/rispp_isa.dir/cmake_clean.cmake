file(REMOVE_RECURSE
  "CMakeFiles/rispp_isa.dir/isa/candidates.cpp.o"
  "CMakeFiles/rispp_isa.dir/isa/candidates.cpp.o.d"
  "CMakeFiles/rispp_isa.dir/isa/h264_si_library.cpp.o"
  "CMakeFiles/rispp_isa.dir/isa/h264_si_library.cpp.o.d"
  "CMakeFiles/rispp_isa.dir/isa/si.cpp.o"
  "CMakeFiles/rispp_isa.dir/isa/si.cpp.o.d"
  "librispp_isa.a"
  "librispp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
