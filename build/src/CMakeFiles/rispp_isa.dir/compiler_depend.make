# Empty compiler generated dependencies file for rispp_isa.
# This may be replaced when dependencies are built.
