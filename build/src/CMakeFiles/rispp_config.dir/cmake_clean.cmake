file(REMOVE_RECURSE
  "CMakeFiles/rispp_config.dir/config/platform_parser.cpp.o"
  "CMakeFiles/rispp_config.dir/config/platform_parser.cpp.o.d"
  "librispp_config.a"
  "librispp_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
