file(REMOVE_RECURSE
  "librispp_config.a"
)
