# Empty compiler generated dependencies file for rispp_config.
# This may be replaced when dependencies are built.
