file(REMOVE_RECURSE
  "librispp_alg.a"
)
