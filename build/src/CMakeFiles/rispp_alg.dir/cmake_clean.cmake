file(REMOVE_RECURSE
  "CMakeFiles/rispp_alg.dir/alg/molecule.cpp.o"
  "CMakeFiles/rispp_alg.dir/alg/molecule.cpp.o.d"
  "librispp_alg.a"
  "librispp_alg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_alg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
