# Empty dependencies file for rispp_alg.
# This may be replaced when dependencies are built.
