# Empty compiler generated dependencies file for rispp_cpu.
# This may be replaced when dependencies are built.
