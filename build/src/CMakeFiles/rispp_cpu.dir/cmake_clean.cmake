file(REMOVE_RECURSE
  "CMakeFiles/rispp_cpu.dir/cpu/core.cpp.o"
  "CMakeFiles/rispp_cpu.dir/cpu/core.cpp.o.d"
  "CMakeFiles/rispp_cpu.dir/cpu/emulation.cpp.o"
  "CMakeFiles/rispp_cpu.dir/cpu/emulation.cpp.o.d"
  "CMakeFiles/rispp_cpu.dir/cpu/program.cpp.o"
  "CMakeFiles/rispp_cpu.dir/cpu/program.cpp.o.d"
  "librispp_cpu.a"
  "librispp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
