file(REMOVE_RECURSE
  "librispp_cpu.a"
)
