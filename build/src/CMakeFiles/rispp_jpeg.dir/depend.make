# Empty dependencies file for rispp_jpeg.
# This may be replaced when dependencies are built.
