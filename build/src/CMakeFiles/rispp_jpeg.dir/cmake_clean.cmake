file(REMOVE_RECURSE
  "CMakeFiles/rispp_jpeg.dir/jpeg/jpeg_si_library.cpp.o"
  "CMakeFiles/rispp_jpeg.dir/jpeg/jpeg_si_library.cpp.o.d"
  "CMakeFiles/rispp_jpeg.dir/jpeg/jpeg_workload.cpp.o"
  "CMakeFiles/rispp_jpeg.dir/jpeg/jpeg_workload.cpp.o.d"
  "librispp_jpeg.a"
  "librispp_jpeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_jpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
