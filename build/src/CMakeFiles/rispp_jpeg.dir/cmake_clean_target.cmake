file(REMOVE_RECURSE
  "librispp_jpeg.a"
)
