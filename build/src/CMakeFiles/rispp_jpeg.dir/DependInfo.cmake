
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jpeg/jpeg_si_library.cpp" "src/CMakeFiles/rispp_jpeg.dir/jpeg/jpeg_si_library.cpp.o" "gcc" "src/CMakeFiles/rispp_jpeg.dir/jpeg/jpeg_si_library.cpp.o.d"
  "/root/repo/src/jpeg/jpeg_workload.cpp" "src/CMakeFiles/rispp_jpeg.dir/jpeg/jpeg_workload.cpp.o" "gcc" "src/CMakeFiles/rispp_jpeg.dir/jpeg/jpeg_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rispp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_h264.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_dpg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_alg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
