file(REMOVE_RECURSE
  "CMakeFiles/rispp_monitor.dir/monitor/forecast.cpp.o"
  "CMakeFiles/rispp_monitor.dir/monitor/forecast.cpp.o.d"
  "librispp_monitor.a"
  "librispp_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
