# Empty dependencies file for rispp_monitor.
# This may be replaced when dependencies are built.
