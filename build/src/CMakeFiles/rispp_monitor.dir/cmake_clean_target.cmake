file(REMOVE_RECURSE
  "librispp_monitor.a"
)
