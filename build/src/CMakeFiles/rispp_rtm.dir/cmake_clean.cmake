file(REMOVE_RECURSE
  "CMakeFiles/rispp_rtm.dir/rtm/run_time_manager.cpp.o"
  "CMakeFiles/rispp_rtm.dir/rtm/run_time_manager.cpp.o.d"
  "librispp_rtm.a"
  "librispp_rtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_rtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
