file(REMOVE_RECURSE
  "librispp_rtm.a"
)
