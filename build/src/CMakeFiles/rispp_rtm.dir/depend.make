# Empty dependencies file for rispp_rtm.
# This may be replaced when dependencies are built.
