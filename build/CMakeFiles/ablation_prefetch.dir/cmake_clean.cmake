file(REMOVE_RECURSE
  "CMakeFiles/ablation_prefetch.dir/bench/ablation_prefetch.cpp.o"
  "CMakeFiles/ablation_prefetch.dir/bench/ablation_prefetch.cpp.o.d"
  "bench/ablation_prefetch"
  "bench/ablation_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
