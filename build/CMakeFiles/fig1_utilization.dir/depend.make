# Empty dependencies file for fig1_utilization.
# This may be replaced when dependencies are built.
