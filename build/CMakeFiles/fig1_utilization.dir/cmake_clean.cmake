file(REMOVE_RECURSE
  "CMakeFiles/fig1_utilization.dir/bench/fig1_utilization.cpp.o"
  "CMakeFiles/fig1_utilization.dir/bench/fig1_utilization.cpp.o.d"
  "bench/fig1_utilization"
  "bench/fig1_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
