file(REMOVE_RECURSE
  "CMakeFiles/micro_ops.dir/bench/micro_ops.cpp.o"
  "CMakeFiles/micro_ops.dir/bench/micro_ops.cpp.o.d"
  "bench/micro_ops"
  "bench/micro_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
