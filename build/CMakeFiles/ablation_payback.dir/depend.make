# Empty dependencies file for ablation_payback.
# This may be replaced when dependencies are built.
