file(REMOVE_RECURSE
  "CMakeFiles/ablation_payback.dir/bench/ablation_payback.cpp.o"
  "CMakeFiles/ablation_payback.dir/bench/ablation_payback.cpp.o.d"
  "bench/ablation_payback"
  "bench/ablation_payback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_payback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
