file(REMOVE_RECURSE
  "CMakeFiles/ablation_benefit_metric.dir/bench/ablation_benefit_metric.cpp.o"
  "CMakeFiles/ablation_benefit_metric.dir/bench/ablation_benefit_metric.cpp.o.d"
  "bench/ablation_benefit_metric"
  "bench/ablation_benefit_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_benefit_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
