# Empty compiler generated dependencies file for ablation_benefit_metric.
# This may be replaced when dependencies are built.
