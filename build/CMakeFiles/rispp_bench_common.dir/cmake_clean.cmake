file(REMOVE_RECURSE
  "CMakeFiles/rispp_bench_common.dir/bench/common.cpp.o"
  "CMakeFiles/rispp_bench_common.dir/bench/common.cpp.o.d"
  "librispp_bench_common.a"
  "librispp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
