# Empty compiler generated dependencies file for rispp_bench_common.
# This may be replaced when dependencies are built.
