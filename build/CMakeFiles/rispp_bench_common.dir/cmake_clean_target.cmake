file(REMOVE_RECURSE
  "librispp_bench_common.a"
)
