# Empty dependencies file for fig8_hef_detail.
# This may be replaced when dependencies are built.
