file(REMOVE_RECURSE
  "CMakeFiles/fig8_hef_detail.dir/bench/fig8_hef_detail.cpp.o"
  "CMakeFiles/fig8_hef_detail.dir/bench/fig8_hef_detail.cpp.o.d"
  "bench/fig8_hef_detail"
  "bench/fig8_hef_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_hef_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
