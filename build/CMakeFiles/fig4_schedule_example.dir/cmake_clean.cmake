file(REMOVE_RECURSE
  "CMakeFiles/fig4_schedule_example.dir/bench/fig4_schedule_example.cpp.o"
  "CMakeFiles/fig4_schedule_example.dir/bench/fig4_schedule_example.cpp.o.d"
  "bench/fig4_schedule_example"
  "bench/fig4_schedule_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_schedule_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
