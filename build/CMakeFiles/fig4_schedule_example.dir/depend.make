# Empty dependencies file for fig4_schedule_example.
# This may be replaced when dependencies are built.
