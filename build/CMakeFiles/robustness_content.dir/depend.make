# Empty dependencies file for robustness_content.
# This may be replaced when dependencies are built.
