
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/robustness_content.cpp" "CMakeFiles/robustness_content.dir/bench/robustness_content.cpp.o" "gcc" "CMakeFiles/robustness_content.dir/bench/robustness_content.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/rispp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_rtm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_select.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_jpeg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_h264.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_dpg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_alg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
