file(REMOVE_RECURSE
  "CMakeFiles/robustness_content.dir/bench/robustness_content.cpp.o"
  "CMakeFiles/robustness_content.dir/bench/robustness_content.cpp.o.d"
  "bench/robustness_content"
  "bench/robustness_content.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
