# Empty compiler generated dependencies file for table3_scheduler_cost.
# This may be replaced when dependencies are built.
