file(REMOVE_RECURSE
  "CMakeFiles/table3_scheduler_cost.dir/bench/table3_scheduler_cost.cpp.o"
  "CMakeFiles/table3_scheduler_cost.dir/bench/table3_scheduler_cost.cpp.o.d"
  "bench/table3_scheduler_cost"
  "bench/table3_scheduler_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_scheduler_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
