# Empty dependencies file for fig7_scheduler_sweep.
# This may be replaced when dependencies are built.
