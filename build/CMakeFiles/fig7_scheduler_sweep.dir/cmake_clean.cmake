file(REMOVE_RECURSE
  "CMakeFiles/fig7_scheduler_sweep.dir/bench/fig7_scheduler_sweep.cpp.o"
  "CMakeFiles/fig7_scheduler_sweep.dir/bench/fig7_scheduler_sweep.cpp.o.d"
  "bench/fig7_scheduler_sweep"
  "bench/fig7_scheduler_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_scheduler_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
