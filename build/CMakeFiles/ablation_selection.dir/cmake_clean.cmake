file(REMOVE_RECURSE
  "CMakeFiles/ablation_selection.dir/bench/ablation_selection.cpp.o"
  "CMakeFiles/ablation_selection.dir/bench/ablation_selection.cpp.o.d"
  "bench/ablation_selection"
  "bench/ablation_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
