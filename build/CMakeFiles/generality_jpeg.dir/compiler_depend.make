# Empty compiler generated dependencies file for generality_jpeg.
# This may be replaced when dependencies are built.
