file(REMOVE_RECURSE
  "CMakeFiles/generality_jpeg.dir/bench/generality_jpeg.cpp.o"
  "CMakeFiles/generality_jpeg.dir/bench/generality_jpeg.cpp.o.d"
  "bench/generality_jpeg"
  "bench/generality_jpeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generality_jpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
