file(REMOVE_RECURSE
  "CMakeFiles/ablation_forecast.dir/bench/ablation_forecast.cpp.o"
  "CMakeFiles/ablation_forecast.dir/bench/ablation_forecast.cpp.o.d"
  "bench/ablation_forecast"
  "bench/ablation_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
