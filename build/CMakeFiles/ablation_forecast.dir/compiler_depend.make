# Empty compiler generated dependencies file for ablation_forecast.
# This may be replaced when dependencies are built.
