file(REMOVE_RECURSE
  "CMakeFiles/table2_speedup_vs_molen.dir/bench/table2_speedup_vs_molen.cpp.o"
  "CMakeFiles/table2_speedup_vs_molen.dir/bench/table2_speedup_vs_molen.cpp.o.d"
  "bench/table2_speedup_vs_molen"
  "bench/table2_speedup_vs_molen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_speedup_vs_molen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
