# Empty dependencies file for table2_speedup_vs_molen.
# This may be replaced when dependencies are built.
