file(REMOVE_RECURSE
  "CMakeFiles/ablation_reconfig_bandwidth.dir/bench/ablation_reconfig_bandwidth.cpp.o"
  "CMakeFiles/ablation_reconfig_bandwidth.dir/bench/ablation_reconfig_bandwidth.cpp.o.d"
  "bench/ablation_reconfig_bandwidth"
  "bench/ablation_reconfig_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reconfig_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
