# Empty dependencies file for ablation_reconfig_bandwidth.
# This may be replaced when dependencies are built.
