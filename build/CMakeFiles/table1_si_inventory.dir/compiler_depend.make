# Empty compiler generated dependencies file for table1_si_inventory.
# This may be replaced when dependencies are built.
