file(REMOVE_RECURSE
  "CMakeFiles/table1_si_inventory.dir/bench/table1_si_inventory.cpp.o"
  "CMakeFiles/table1_si_inventory.dir/bench/table1_si_inventory.cpp.o.d"
  "bench/table1_si_inventory"
  "bench/table1_si_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_si_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
