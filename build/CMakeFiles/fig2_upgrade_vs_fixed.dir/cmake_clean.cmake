file(REMOVE_RECURSE
  "CMakeFiles/fig2_upgrade_vs_fixed.dir/bench/fig2_upgrade_vs_fixed.cpp.o"
  "CMakeFiles/fig2_upgrade_vs_fixed.dir/bench/fig2_upgrade_vs_fixed.cpp.o.d"
  "bench/fig2_upgrade_vs_fixed"
  "bench/fig2_upgrade_vs_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_upgrade_vs_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
