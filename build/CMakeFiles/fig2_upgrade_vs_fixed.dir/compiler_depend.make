# Empty compiler generated dependencies file for fig2_upgrade_vs_fixed.
# This may be replaced when dependencies are built.
