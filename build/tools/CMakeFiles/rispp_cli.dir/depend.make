# Empty dependencies file for rispp_cli.
# This may be replaced when dependencies are built.
