file(REMOVE_RECURSE
  "CMakeFiles/rispp_cli.dir/rispp_cli.cpp.o"
  "CMakeFiles/rispp_cli.dir/rispp_cli.cpp.o.d"
  "rispp"
  "rispp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rispp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
