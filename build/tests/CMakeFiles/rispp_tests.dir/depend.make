# Empty dependencies file for rispp_tests.
# This may be replaced when dependencies are built.
