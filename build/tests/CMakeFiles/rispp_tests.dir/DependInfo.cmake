
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/base_test.cpp" "tests/CMakeFiles/rispp_tests.dir/base_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/base_test.cpp.o.d"
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/rispp_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/calibration_test.cpp" "tests/CMakeFiles/rispp_tests.dir/calibration_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/calibration_test.cpp.o.d"
  "/root/repo/tests/config_test.cpp" "tests/CMakeFiles/rispp_tests.dir/config_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/config_test.cpp.o.d"
  "/root/repo/tests/cpu_test.cpp" "tests/CMakeFiles/rispp_tests.dir/cpu_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/cpu_test.cpp.o.d"
  "/root/repo/tests/decoder_test.cpp" "tests/CMakeFiles/rispp_tests.dir/decoder_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/decoder_test.cpp.o.d"
  "/root/repo/tests/dpg_test.cpp" "tests/CMakeFiles/rispp_tests.dir/dpg_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/dpg_test.cpp.o.d"
  "/root/repo/tests/encoder_test.cpp" "tests/CMakeFiles/rispp_tests.dir/encoder_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/encoder_test.cpp.o.d"
  "/root/repo/tests/entropy_test.cpp" "tests/CMakeFiles/rispp_tests.dir/entropy_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/entropy_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/rispp_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/h264_kernels_test.cpp" "tests/CMakeFiles/rispp_tests.dir/h264_kernels_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/h264_kernels_test.cpp.o.d"
  "/root/repo/tests/hw_test.cpp" "tests/CMakeFiles/rispp_tests.dir/hw_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/hw_test.cpp.o.d"
  "/root/repo/tests/jpeg_test.cpp" "tests/CMakeFiles/rispp_tests.dir/jpeg_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/jpeg_test.cpp.o.d"
  "/root/repo/tests/molecule_test.cpp" "tests/CMakeFiles/rispp_tests.dir/molecule_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/molecule_test.cpp.o.d"
  "/root/repo/tests/monitor_test.cpp" "tests/CMakeFiles/rispp_tests.dir/monitor_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/monitor_test.cpp.o.d"
  "/root/repo/tests/rtm_test.cpp" "tests/CMakeFiles/rispp_tests.dir/rtm_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/rtm_test.cpp.o.d"
  "/root/repo/tests/scheduler_test.cpp" "tests/CMakeFiles/rispp_tests.dir/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/scheduler_test.cpp.o.d"
  "/root/repo/tests/selection_test.cpp" "tests/CMakeFiles/rispp_tests.dir/selection_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/selection_test.cpp.o.d"
  "/root/repo/tests/si_library_test.cpp" "tests/CMakeFiles/rispp_tests.dir/si_library_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/si_library_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/rispp_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/rispp_tests.dir/sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rispp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_rtm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_select.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_jpeg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_h264.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_dpg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_alg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rispp_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
